#include "ftsched/core/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {
// Relative tolerance for floating-point schedule comparisons.
constexpr double kTol = 1e-9;

bool leq(double a, double b) { return a <= b + kTol * (1.0 + std::abs(b)); }
}  // namespace

ReplicatedSchedule::ReplicatedSchedule(const CostModel& costs,
                                       std::size_t epsilon,
                                       std::string algorithm)
    : costs_(&costs),
      epsilon_(epsilon),
      algorithm_(std::move(algorithm)),
      replicas_(costs.graph().task_count()),
      channels_(costs.graph().edge_count()),
      timeline_(costs.platform().proc_count()) {
  FTSCHED_REQUIRE(epsilon + 1 <= costs.platform().proc_count(),
                  "need at least epsilon+1 processors");
}

void ReplicatedSchedule::place_task(TaskId t, std::vector<Replica> replicas) {
  FTSCHED_REQUIRE(t.index() < replicas_.size(), "unknown task");
  FTSCHED_REQUIRE(replicas_[t.index()].empty(), "task already placed");
  FTSCHED_REQUIRE(replicas.size() >= replica_count(),
                  "task must have at least epsilon+1 replicas");
  for (std::size_t k = 0; k < replicas.size(); ++k) {
    const Replica& r = replicas[k];
    FTSCHED_REQUIRE(r.proc.index() < timeline_.size(),
                    "replica on unknown processor");
    timeline_[r.proc.index()].push_back(
        PlacedReplica{t, k, r.start, r.finish});
  }
  replicas_[t.index()] = std::move(replicas);
}

void ReplicatedSchedule::set_channels(std::size_t edge_index,
                                      std::vector<Channel> channels) {
  FTSCHED_REQUIRE(edge_index < channels_.size(), "unknown edge");
  channels_[edge_index] = std::move(channels);
}

double ReplicatedSchedule::lower_bound() const {
  // M* = max over exit tasks of (min over replicas of failure-free finish).
  double bound = 0.0;
  for (TaskId t : graph().exit_tasks()) {
    const auto& reps = replicas_[t.index()];
    FTSCHED_REQUIRE(!reps.empty(), "schedule incomplete: exit task unplaced");
    double first = std::numeric_limits<double>::infinity();
    for (const Replica& r : reps) first = std::min(first, r.finish);
    bound = std::max(bound, first);
  }
  return bound;
}

double ReplicatedSchedule::upper_bound() const {
  // M = max over exit tasks of (max over replicas of pessimistic finish).
  double bound = 0.0;
  for (TaskId t : graph().exit_tasks()) {
    const auto& reps = replicas_[t.index()];
    FTSCHED_REQUIRE(!reps.empty(), "schedule incomplete: exit task unplaced");
    for (const Replica& r : reps) bound = std::max(bound, r.pess_finish);
  }
  return bound;
}

std::size_t ReplicatedSchedule::interproc_message_count() const {
  std::size_t count = 0;
  for (std::size_t e = 0; e < channels_.size(); ++e) {
    const Edge& edge = graph().edge(e);
    for (const Channel& c : channels_[e]) {
      const ProcId src = replicas_[edge.src.index()][c.src_replica].proc;
      const ProcId dst = replicas_[edge.dst.index()][c.dst_replica].proc;
      if (src != dst) ++count;
    }
  }
  return count;
}

std::size_t ReplicatedSchedule::channel_count() const {
  std::size_t count = 0;
  for (const auto& cs : channels_) count += cs.size();
  return count;
}

std::vector<char> ReplicatedSchedule::mapping_matrix() const {
  const std::size_t v = graph().task_count();
  const std::size_t m = platform().proc_count();
  std::vector<char> x(v * m, 0);
  for (std::size_t t = 0; t < v; ++t) {
    for (const Replica& r : replicas_[t]) x[t * m + r.proc.index()] = 1;
  }
  return x;
}

void ReplicatedSchedule::validate() const {
  const TaskGraph& g = graph();
  // 1. Placement and Prop. 4.1 (pairwise-distinct processors).
  for (TaskId t : g.tasks()) {
    const auto& reps = replicas_[t.index()];
    FTSCHED_REQUIRE(reps.size() >= replica_count(),
                    "task " + g.label(t) + " has fewer than epsilon+1 replicas");
    for (std::size_t a = 0; a < reps.size(); ++a) {
      for (std::size_t b = a + 1; b < reps.size(); ++b) {
        FTSCHED_REQUIRE(reps[a].proc != reps[b].proc,
                        "Prop 4.1 violated: two replicas of " + g.label(t) +
                            " share a processor");
      }
    }
    for (const Replica& r : reps) {
      FTSCHED_REQUIRE(r.start >= -kTol, "negative start time");
      const double e = costs_->exec(t, r.proc);
      FTSCHED_REQUIRE(std::abs((r.finish - r.start) - e) <= kTol * (1.0 + e),
                      "replica duration != E(t,P) for " + g.label(t));
      FTSCHED_REQUIRE(leq(r.start, r.pess_start) && leq(r.finish, r.pess_finish),
                      "pessimistic times must dominate failure-free times");
    }
  }
  // 2. Processor timelines must not overlap.
  for (std::size_t p = 0; p < timeline_.size(); ++p) {
    auto slots = timeline_[p];
    std::sort(slots.begin(), slots.end(),
              [](const PlacedReplica& a, const PlacedReplica& b) {
                return a.start < b.start;
              });
    for (std::size_t i = 1; i < slots.size(); ++i) {
      FTSCHED_REQUIRE(leq(slots[i - 1].finish, slots[i].start),
                      "overlapping replicas on processor " + std::to_string(p));
    }
  }
  // 3. Channels: coverage and temporal feasibility (failure-free timeline).
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(e);
    const auto& src_reps = replicas_[edge.src.index()];
    const auto& dst_reps = replicas_[edge.dst.index()];
    std::vector<double> earliest(dst_reps.size(),
                                 std::numeric_limits<double>::infinity());
    for (const Channel& c : channels_[e]) {
      FTSCHED_REQUIRE(c.src_replica < src_reps.size() &&
                          c.dst_replica < dst_reps.size(),
                      "channel replica index out of range");
      const Replica& src = src_reps[c.src_replica];
      const Replica& dst = dst_reps[c.dst_replica];
      const double arrival =
          src.finish + costs_->comm(e, src.proc, dst.proc);
      earliest[c.dst_replica] = std::min(earliest[c.dst_replica], arrival);
    }
    for (std::size_t k = 0; k < dst_reps.size(); ++k) {
      FTSCHED_REQUIRE(std::isfinite(earliest[k]),
                      "replica has no inbound channel for an incoming edge");
      FTSCHED_REQUIRE(leq(earliest[k], dst_reps[k].start),
                      "replica starts before its earliest input arrives");
    }
  }
}

}  // namespace ftsched
