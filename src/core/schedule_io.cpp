#include "ftsched/core/schedule_io.hpp"

#include <iomanip>
#include <map>
#include <sstream>

#include "ftsched/util/error.hpp"

namespace ftsched {

void write_schedule(std::ostream& os, const ReplicatedSchedule& schedule) {
  os << std::setprecision(17);
  os << "schedule " << schedule.algorithm() << ' ' << schedule.epsilon()
     << '\n';
  for (TaskId t : schedule.graph().tasks()) {
    for (const Replica& r : schedule.replicas(t)) {
      os << "replica " << t.value() << ' ' << r.proc.value() << ' '
         << r.start << ' ' << r.finish << ' ' << r.pess_start << ' '
         << r.pess_finish << '\n';
    }
  }
  for (std::size_t e = 0; e < schedule.graph().edge_count(); ++e) {
    for (const Channel& c : schedule.channels(e)) {
      os << "channel " << e << ' ' << c.src_replica << ' ' << c.dst_replica
         << '\n';
    }
  }
  for (TaskId t : schedule.repaired_tasks()) {
    os << "repaired " << t.value() << '\n';
  }
}

std::string schedule_to_string(const ReplicatedSchedule& schedule) {
  std::ostringstream os;
  write_schedule(os, schedule);
  return os.str();
}

ReplicatedSchedule read_schedule(std::istream& is, const CostModel& costs,
                                 bool validate) {
  std::string line;
  std::string algorithm;
  std::size_t epsilon = 0;
  bool saw_header = false;
  std::map<std::uint32_t, std::vector<Replica>> replicas;
  std::map<std::size_t, std::vector<Channel>> channels;
  std::vector<TaskId> repaired;
  std::size_t line_no = 0;

  while (std::getline(is, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "schedule") {
      ls >> algorithm >> epsilon;
      FTSCHED_REQUIRE(!ls.fail(), "malformed schedule header");
      saw_header = true;
    } else if (kind == "replica") {
      std::uint32_t task = 0;
      std::uint32_t proc = 0;
      Replica r;
      ls >> task >> proc >> r.start >> r.finish >> r.pess_start >>
          r.pess_finish;
      FTSCHED_REQUIRE(!ls.fail(), "malformed replica line " +
                                      std::to_string(line_no));
      r.proc = ProcId{proc};
      replicas[task].push_back(r);
    } else if (kind == "channel") {
      std::size_t edge = 0;
      Channel c;
      ls >> edge >> c.src_replica >> c.dst_replica;
      FTSCHED_REQUIRE(!ls.fail(), "malformed channel line " +
                                      std::to_string(line_no));
      channels[edge].push_back(c);
    } else if (kind == "repaired") {
      std::uint32_t task = 0;
      ls >> task;
      FTSCHED_REQUIRE(!ls.fail(), "malformed repaired line " +
                                      std::to_string(line_no));
      repaired.emplace_back(task);
    } else {
      throw InvalidArgument("unknown directive '" + kind + "' on line " +
                            std::to_string(line_no));
    }
  }
  FTSCHED_REQUIRE(saw_header, "missing 'schedule <algorithm> <epsilon>'");

  ReplicatedSchedule schedule(costs, epsilon, algorithm);
  for (auto& [task, reps] : replicas) {
    schedule.place_task(TaskId{task}, std::move(reps));
  }
  for (auto& [edge, cs] : channels) {
    FTSCHED_REQUIRE(edge < costs.graph().edge_count(),
                    "channel references unknown edge");
    schedule.set_channels(edge, std::move(cs));
  }
  schedule.set_repaired_tasks(std::move(repaired));
  if (validate) schedule.validate();
  return schedule;
}

ReplicatedSchedule schedule_from_string(const std::string& text,
                                        const CostModel& costs,
                                        bool validate) {
  std::istringstream is(text);
  return read_schedule(is, costs, validate);
}

}  // namespace ftsched
