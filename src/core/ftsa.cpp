#include "ftsched/core/ftsa.hpp"

#include "engine_detail.hpp"

namespace ftsched {

ReplicatedSchedule ftsa_schedule(const CostModel& costs,
                                 const FtsaOptions& options) {
  detail::EngineOptions engine_options;
  engine_options.epsilon = options.epsilon;
  engine_options.seed = options.seed;
  engine_options.policy = detail::ChannelPolicy::kAllPairs;
  switch (options.priority) {
    case FtsaPriority::kCriticalness:
      engine_options.priority = detail::PriorityMode::kCriticalness;
      break;
    case FtsaPriority::kBottomLevel:
      engine_options.priority = detail::PriorityMode::kBottomLevel;
      break;
    case FtsaPriority::kRandom:
      engine_options.priority = detail::PriorityMode::kRandom;
      break;
  }
  engine_options.comm = options.comm;
  engine_options.algorithm_name = "FTSA";
  return detail::run_list_engine(costs, engine_options);
}

}  // namespace ftsched
