#include "ftsched/core/heft.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "ftsched/core/priorities.hpp"
#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {

struct Slot {
  double start;
  double finish;
};

/// Earliest start >= ready on processor timeline `slots` for a task of
/// length `duration`, using gap insertion when enabled.
double earliest_slot(const std::vector<Slot>& slots, double ready,
                     double duration, bool insertion) {
  if (slots.empty()) return ready;
  if (!insertion) return std::max(ready, slots.back().finish);
  // Try the gap before each slot, then after the last one.
  double candidate = ready;
  for (const Slot& s : slots) {
    if (candidate + duration <= s.start + 1e-12) return candidate;
    candidate = std::max(candidate, s.finish);
  }
  return candidate;
}

void insert_slot(std::vector<Slot>& slots, Slot s) {
  const auto pos = std::lower_bound(
      slots.begin(), slots.end(), s,
      [](const Slot& a, const Slot& b) { return a.start < b.start; });
  slots.insert(pos, s);
}

}  // namespace

ReplicatedSchedule heft_schedule(const CostModel& costs,
                                 const HeftOptions& options) {
  const TaskGraph& g = costs.graph();
  const Platform& platform = costs.platform();
  const std::size_t m = platform.proc_count();

  const auto rank = upward_ranks(costs);
  std::vector<TaskId> order = g.tasks();
  std::stable_sort(order.begin(), order.end(), [&rank](TaskId a, TaskId b) {
    return rank[a.index()] > rank[b.index()];
  });
  // Upward ranks decrease along edges by construction, so this order is
  // topological; assert it in debug builds.
#ifndef NDEBUG
  {
    std::vector<char> seen(g.task_count(), 0);
    for (TaskId t : order) {
      for (std::size_t e : g.in_edges(t)) {
        FTSCHED_ASSERT(seen[g.edge(e).src.index()],
                       "HEFT order is not topological");
      }
      seen[t.index()] = 1;
    }
  }
#endif

  ReplicatedSchedule schedule(costs, /*epsilon=*/0, "HEFT");
  std::vector<std::vector<Slot>> timeline(m);
  std::vector<Replica> placed(g.task_count());

  for (TaskId t : order) {
    double best_finish = std::numeric_limits<double>::infinity();
    Replica best;
    for (std::size_t j = 0; j < m; ++j) {
      const ProcId pj{j};
      double arrival = 0.0;
      for (std::size_t e : g.in_edges(t)) {
        const Edge& edge = g.edge(e);
        const Replica& src = placed[edge.src.index()];
        arrival = std::max(arrival, src.finish +
                                        edge.volume *
                                            platform.delay(src.proc, pj));
      }
      const double duration = costs.exec(t, pj);
      const double start =
          earliest_slot(timeline[j], arrival, duration, options.insertion);
      if (start + duration < best_finish) {
        best_finish = start + duration;
        best = Replica{pj, start, start + duration, start, start + duration};
      }
    }
    insert_slot(timeline[best.proc.index()], Slot{best.start, best.finish});
    placed[t.index()] = best;
    schedule.place_task(t, {best});
  }
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    schedule.set_channels(e, {Channel{0, 0}});
  }
  return schedule;
}

}  // namespace ftsched
