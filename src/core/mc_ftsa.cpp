#include "ftsched/core/mc_ftsa.hpp"

#include "engine_detail.hpp"

namespace ftsched {

ReplicatedSchedule mc_ftsa_schedule(const CostModel& costs,
                                    const McFtsaOptions& options) {
  detail::EngineOptions engine_options;
  engine_options.epsilon = options.epsilon;
  engine_options.seed = options.seed;
  engine_options.policy = options.selector == McSelector::kGreedy
                              ? detail::ChannelPolicy::kMcGreedy
                              : detail::ChannelPolicy::kMcBinarySearchMatching;
  engine_options.repair_vulnerable = options.enforce_fault_tolerance;
  engine_options.comm = options.comm;
  engine_options.algorithm_name = "MC-FTSA";
  return detail::run_list_engine(costs, engine_options);
}

}  // namespace ftsched
