#include "ftsched/core/bicriteria.hpp"

#include <algorithm>
#include <limits>

#include "ftsched/util/error.hpp"
#include "engine_detail.hpp"

namespace ftsched {

namespace {

double bound_of(const ReplicatedSchedule& schedule, LatencyBound bound) {
  return bound == LatencyBound::kLower ? schedule.lower_bound()
                                       : schedule.upper_bound();
}

}  // namespace

std::optional<MaxFailuresResult> max_supported_failures(
    const CostModel& costs, double latency, LatencyBound bound,
    const FtsaOptions& base, bool binary_search) {
  FTSCHED_REQUIRE(latency > 0.0, "latency target must be positive");
  const std::size_t max_epsilon = costs.platform().proc_count() - 1;
  std::size_t computed = 0;

  auto try_epsilon =
      [&](std::size_t eps) -> std::optional<ReplicatedSchedule> {
    FtsaOptions options = base;
    options.epsilon = eps;
    ++computed;
    ReplicatedSchedule s = ftsa_schedule(costs, options);
    if (bound_of(s, bound) <= latency) return s;
    return std::nullopt;
  };

  auto zero = try_epsilon(0);
  if (!zero.has_value()) return std::nullopt;

  MaxFailuresResult result;
  result.epsilon = 0;
  result.lower_bound = zero->lower_bound();
  result.upper_bound = zero->upper_bound();

  if (binary_search) {
    // Invariant: lo feasible, hi+1 infeasible (or hi == max_epsilon).
    std::size_t lo = 0;
    std::size_t hi = max_epsilon;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo + 1) / 2;
      if (auto s = try_epsilon(mid)) {
        lo = mid;
        result.epsilon = mid;
        result.lower_bound = s->lower_bound();
        result.upper_bound = s->upper_bound();
      } else {
        hi = mid - 1;
      }
    }
  } else {
    for (std::size_t eps = 1; eps <= max_epsilon; ++eps) {
      auto s = try_epsilon(eps);
      if (!s.has_value()) break;
      result.epsilon = eps;
      result.lower_bound = s->lower_bound();
      result.upper_bound = s->upper_bound();
    }
  }
  result.schedules_computed = computed;
  return result;
}

std::vector<double> task_deadlines(const CostModel& costs, double latency,
                                   std::size_t epsilon) {
  const TaskGraph& g = costs.graph();
  const Platform& platform = costs.platform();
  const std::size_t n = epsilon + 1;
  FTSCHED_REQUIRE(n <= platform.proc_count(),
                  "epsilon+1 exceeds the number of processors");

  // Average delay over the ε+1 fastest links of the system.
  auto delays = platform.off_diagonal_delays();
  double fast_delay = 0.0;
  if (!delays.empty()) {
    const std::size_t k = std::min(n, delays.size());
    std::partial_sort(delays.begin(),
                      delays.begin() + static_cast<std::ptrdiff_t>(k),
                      delays.end());
    for (std::size_t i = 0; i < k; ++i) fast_delay += delays[i];
    fast_delay /= static_cast<double>(k);
  }

  // Average execution time on each task's ε+1 fastest processors.
  std::vector<double> fast_exec(g.task_count());
  std::vector<double> row(platform.proc_count());
  for (TaskId t : g.tasks()) {
    for (std::size_t j = 0; j < platform.proc_count(); ++j) {
      row[j] = costs.exec(t, ProcId{j});
    }
    std::partial_sort(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(n),
                      row.end());
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += row[i];
    fast_exec[t.index()] = sum / static_cast<double>(n);
  }

  std::vector<double> deadline(g.task_count(),
                               std::numeric_limits<double>::infinity());
  const auto order = g.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    if (g.out_degree(t) == 0) {
      deadline[t.index()] = latency;
      continue;
    }
    for (std::size_t e : g.out_edges(t)) {
      const Edge& edge = g.edge(e);
      const double w = edge.volume * fast_delay;
      deadline[t.index()] =
          std::min(deadline[t.index()],
                   deadline[edge.dst.index()] - fast_exec[edge.dst.index()] - w);
    }
  }
  return deadline;
}

std::optional<ReplicatedSchedule> ftsa_schedule_with_deadline(
    const CostModel& costs, double latency, const FtsaOptions& options) {
  const auto deadlines = task_deadlines(costs, latency, options.epsilon);
  detail::EngineOptions engine_options;
  engine_options.epsilon = options.epsilon;
  engine_options.seed = options.seed;
  engine_options.policy = detail::ChannelPolicy::kAllPairs;
  engine_options.deadlines = &deadlines;
  engine_options.algorithm_name = "FTSA+deadline";
  try {
    return detail::run_list_engine(costs, engine_options);
  } catch (const Infeasible&) {
    return std::nullopt;
  }
}

}  // namespace ftsched
