#include "ftsched/core/matching.hpp"

#include <limits>
#include <queue>

#include "ftsched/util/error.hpp"

namespace ftsched {

BipartiteGraph::BipartiteGraph(std::size_t left_count, std::size_t right_count)
    : adj_(left_count), right_count_(right_count) {}

void BipartiteGraph::add_edge(std::size_t left, std::size_t right) {
  FTSCHED_REQUIRE(left < adj_.size(), "left index out of range");
  FTSCHED_REQUIRE(right < right_count_, "right index out of range");
  adj_[left].push_back(right);
}

namespace {

constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

struct HkState {
  const BipartiteGraph& g;
  std::vector<std::size_t>& pair_left;
  std::vector<std::size_t>& pair_right;
  std::vector<std::size_t> dist;

  // BFS layering over free left nodes; returns true if an augmenting path
  // exists.
  bool bfs() {
    std::queue<std::size_t> q;
    dist.assign(g.left_count(), kInf);
    for (std::size_t l = 0; l < g.left_count(); ++l) {
      if (pair_left[l] == Matching::kUnmatched) {
        dist[l] = 0;
        q.push(l);
      }
    }
    bool found = false;
    while (!q.empty()) {
      const std::size_t l = q.front();
      q.pop();
      for (std::size_t r : g.neighbors(l)) {
        const std::size_t next = pair_right[r];
        if (next == Matching::kUnmatched) {
          found = true;
        } else if (dist[next] == kInf) {
          dist[next] = dist[l] + 1;
          q.push(next);
        }
      }
    }
    return found;
  }

  bool dfs(std::size_t l) {
    for (std::size_t r : g.neighbors(l)) {
      const std::size_t next = pair_right[r];
      if (next == Matching::kUnmatched ||
          (dist[next] == dist[l] + 1 && dfs(next))) {
        pair_left[l] = r;
        pair_right[r] = l;
        return true;
      }
    }
    dist[l] = kInf;
    return false;
  }
};

}  // namespace

Matching hopcroft_karp(const BipartiteGraph& g) {
  Matching m;
  m.pair_of_left.assign(g.left_count(), Matching::kUnmatched);
  m.pair_of_right.assign(g.right_count(), Matching::kUnmatched);
  HkState state{g, m.pair_of_left, m.pair_of_right, {}};
  while (state.bfs()) {
    for (std::size_t l = 0; l < g.left_count(); ++l) {
      if (m.pair_of_left[l] == Matching::kUnmatched && state.dfs(l)) {
        ++m.size;
      }
    }
  }
  return m;
}

}  // namespace ftsched
