#include "ftsched/core/scheduler.hpp"

#include <algorithm>
#include <sstream>

#include "engine_detail.hpp"
#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {

const char* priority_token(FtsaPriority p) {
  switch (p) {
    case FtsaPriority::kCriticalness:
      return "crit";
    case FtsaPriority::kBottomLevel:
      return "bl";
    case FtsaPriority::kRandom:
      return "random";
  }
  return "crit";
}

FtsaPriority parse_priority(const std::string& value) {
  if (value == "crit") return FtsaPriority::kCriticalness;
  if (value == "bl") return FtsaPriority::kBottomLevel;
  if (value == "random") return FtsaPriority::kRandom;
  throw InvalidArgument("scheduler option 'prio': expected crit|bl|random, got '" +
                        value + "'");
}

const char* selector_token(McSelector s) {
  return s == McSelector::kGreedy ? "greedy" : "matching";
}

McSelector parse_selector(const std::string& value) {
  if (value == "greedy") return McSelector::kGreedy;
  if (value == "matching") return McSelector::kBinarySearchMatching;
  throw InvalidArgument(
      "scheduler option 'selector': expected greedy|matching, got '" + value +
      "'");
}

/// Appends "key=value" to the option tail being built.
void emit(std::vector<std::string>& parts, const std::string& key,
          const std::string& value) {
  parts.push_back(key + "=" + value);
}

std::string spec_string(const std::string& name,
                        const std::vector<std::string>& parts) {
  if (parts.empty()) return name;
  return name + ":" + spec_detail::join(parts, ",");
}

}  // namespace

// ------------------------------------------------------------------ adapters

std::string FtsaScheduler::name() const {
  std::vector<std::string> parts;
  if (options_.epsilon != 1) emit(parts, "eps", std::to_string(options_.epsilon));
  if (options_.comm.ports != 0) {
    emit(parts, "ports", std::to_string(options_.comm.ports));
  }
  if (options_.priority != FtsaPriority::kCriticalness) {
    emit(parts, "prio", priority_token(options_.priority));
  }
  if (options_.seed != 0) emit(parts, "seed", std::to_string(options_.seed));
  return spec_string("ftsa", parts);
}

std::string FtsaScheduler::describe() const {
  std::ostringstream os;
  os << "FTSA (paper Alg. 4.1): criticalness list scheduling, epsilon="
     << options_.epsilon << ", priority=" << priority_token(options_.priority);
  if (options_.comm.enabled()) {
    os << ", contention-aware (" << options_.comm.ports << " send ports)";
  }
  return os.str();
}

ReplicatedSchedule FtsaScheduler::run(const CostModel& costs) const {
  return ftsa_schedule(costs, options_);
}

std::string McFtsaScheduler::name() const {
  std::vector<std::string> parts;
  if (!options_.enforce_fault_tolerance) emit(parts, "enforce", "0");
  if (options_.epsilon != 1) emit(parts, "eps", std::to_string(options_.epsilon));
  if (options_.comm.ports != 0) {
    emit(parts, "ports", std::to_string(options_.comm.ports));
  }
  if (options_.seed != 0) emit(parts, "seed", std::to_string(options_.seed));
  if (options_.selector != McSelector::kGreedy) {
    emit(parts, "selector", selector_token(options_.selector));
  }
  return spec_string("mc-ftsa", parts);
}

std::string McFtsaScheduler::describe() const {
  std::ostringstream os;
  os << "MC-FTSA (paper §4.2): FTSA with minimum communications, epsilon="
     << options_.epsilon << ", selector=" << selector_token(options_.selector)
     << (options_.enforce_fault_tolerance ? ", end-to-end repair on"
                                          : ", paper-faithful (no repair)");
  return os.str();
}

ReplicatedSchedule McFtsaScheduler::run(const CostModel& costs) const {
  return mc_ftsa_schedule(costs, options_);
}

std::string FtbarScheduler::name() const {
  std::vector<std::string> parts;
  if (!options_.use_minimize_start_time) emit(parts, "mst", "0");
  if (options_.npf != 1) emit(parts, "npf", std::to_string(options_.npf));
  if (options_.seed != 0) emit(parts, "seed", std::to_string(options_.seed));
  return spec_string("ftbar", parts);
}

std::string FtbarScheduler::describe() const {
  std::ostringstream os;
  os << "FTBAR (Girault et al., DSN'03): schedule-pressure active replication, "
        "npf="
     << options_.npf << ", minimize-start-time duplication "
     << (options_.use_minimize_start_time ? "on" : "off");
  return os.str();
}

ReplicatedSchedule FtbarScheduler::run(const CostModel& costs) const {
  return ftbar_schedule(costs, options_);
}

std::string HeftScheduler::name() const {
  std::vector<std::string> parts;
  if (!options_.insertion) emit(parts, "insertion", "0");
  return spec_string("heft", parts);
}

std::string HeftScheduler::describe() const {
  return std::string("HEFT (Topcuoglu et al.): fault-free baseline, ") +
         (options_.insertion ? "insertion-based" : "append-only") +
         " earliest finish time";
}

ReplicatedSchedule HeftScheduler::run(const CostModel& costs) const {
  return heft_schedule(costs, options_);
}

std::string CpopScheduler::name() const { return "cpop"; }

std::string CpopScheduler::describe() const {
  return "CPOP (Topcuoglu et al.): fault-free baseline, critical path pinned "
         "to one processor";
}

ReplicatedSchedule CpopScheduler::run(const CostModel& costs) const {
  return cpop_schedule(costs);
}

std::string RandomScheduler::name() const {
  std::vector<std::string> parts;
  if (options_.epsilon != 1) emit(parts, "eps", std::to_string(options_.epsilon));
  if (options_.seed != 0) emit(parts, "seed", std::to_string(options_.seed));
  return spec_string("random", parts);
}

std::string RandomScheduler::describe() const {
  std::ostringstream os;
  os << "random placement control: epsilon=" << options_.epsilon
     << ", FTSA timing/channels with uniformly random processor sets";
  return os.str();
}

ReplicatedSchedule RandomScheduler::run(const CostModel& costs) const {
  detail::EngineOptions engine_options;
  engine_options.epsilon = options_.epsilon;
  engine_options.seed = options_.seed;
  engine_options.policy = detail::ChannelPolicy::kAllPairs;
  engine_options.random_placement = true;
  engine_options.algorithm_name = "RANDOM";
  return detail::run_list_engine(costs, engine_options);
}

// ------------------------------------------------------------------ registry

namespace {

CommAwareness parse_comm(const SchedulerOptions& o) {
  CommAwareness comm;
  comm.ports = o.get_size("ports", 0);
  return comm;
}

FtsaOptions parse_ftsa_options(const SchedulerOptions& o) {
  FtsaOptions options;
  options.epsilon = o.get_size("eps", 1);
  options.seed = o.get_u64("seed", 0);
  options.priority = parse_priority(o.get("prio", "crit"));
  options.comm = parse_comm(o);
  return options;
}

McFtsaOptions parse_mc_ftsa_options(const SchedulerOptions& o,
                                    bool enforce_default) {
  McFtsaOptions options;
  options.epsilon = o.get_size("eps", 1);
  options.seed = o.get_u64("seed", 0);
  options.selector = parse_selector(o.get("selector", "greedy"));
  options.enforce_fault_tolerance = o.get_bool("enforce", enforce_default);
  options.comm = parse_comm(o);
  return options;
}

const std::vector<SchedulerRegistry::OptionSpec> kFtsaOptionSpecs{
    {"eps", "1", "failures tolerated (epsilon+1 replicas per task)"},
    {"seed", "0", "tie-breaking seed"},
    {"prio", "crit", "free-task priority: crit|bl|random"},
    {"ports", "0", "send ports per processor (0 = contention-free)"},
};

const std::vector<SchedulerRegistry::OptionSpec> kMcFtsaOptionSpecs{
    {"eps", "1", "failures tolerated (epsilon+1 replicas per task)"},
    {"seed", "0", "tie-breaking seed"},
    {"selector", "greedy", "channel selector: greedy|matching"},
    {"enforce", "1", "end-to-end fault-tolerance repair: 0|1"},
    {"ports", "0", "send ports per processor (0 = contention-free)"},
};

std::vector<SchedulerRegistry::OptionSpec> mc_ftsa_paper_option_specs() {
  std::vector<SchedulerRegistry::OptionSpec> specs = kMcFtsaOptionSpecs;
  for (auto& spec : specs) {
    if (spec.key == "enforce") spec.default_value = "0";
  }
  return specs;
}

SchedulerRegistry make_global_registry() {
  SchedulerRegistry registry;
  registry.add({"ftsa",
                "FTSA: the paper's fault-tolerant list scheduler (Alg. 4.1)",
                kFtsaOptionSpecs,
                [](const SchedulerOptions& o) -> SchedulerPtr {
                  return std::make_unique<FtsaScheduler>(parse_ftsa_options(o));
                }});
  registry.add({"mc-ftsa",
                "MC-FTSA: FTSA with minimum communications (paper §4.2)",
                kMcFtsaOptionSpecs,
                [](const SchedulerOptions& o) -> SchedulerPtr {
                  return std::make_unique<McFtsaScheduler>(
                      parse_mc_ftsa_options(o, /*enforce_default=*/true));
                }});
  registry.add({"mc-ftsa-paper",
                "MC-FTSA with end-to-end repair off (paper-faithful variant)",
                mc_ftsa_paper_option_specs(),
                [](const SchedulerOptions& o) -> SchedulerPtr {
                  return std::make_unique<McFtsaScheduler>(
                      parse_mc_ftsa_options(o, /*enforce_default=*/false));
                }});
  registry.add({"ftbar",
                "FTBAR: schedule-pressure active replication (DSN'03)",
                {
                    {"npf", "1", "failures tolerated (npf+1 replicas per task)"},
                    {"eps", "1", "alias of npf"},
                    {"seed", "0", "tie-breaking seed"},
                    {"mst", "1", "minimize-start-time duplication: 0|1"},
                },
                [](const SchedulerOptions& o) -> SchedulerPtr {
                  FtbarOptions options;
                  options.npf = o.get_size("npf", o.get_size("eps", 1));
                  options.seed = o.get_u64("seed", 0);
                  options.use_minimize_start_time = o.get_bool("mst", true);
                  return std::make_unique<FtbarScheduler>(options);
                }});
  registry.add({"heft",
                "HEFT: fault-free earliest-finish-time baseline",
                {
                    {"insertion", "1", "insertion-based placement: 0|1"},
                },
                [](const SchedulerOptions& o) -> SchedulerPtr {
                  HeftOptions options;
                  options.insertion = o.get_bool("insertion", true);
                  return std::make_unique<HeftScheduler>(options);
                }});
  registry.add({"cpop",
                "CPOP: fault-free critical-path-on-a-processor baseline",
                {},
                [](const SchedulerOptions&) -> SchedulerPtr {
                  return std::make_unique<CpopScheduler>();
                }});
  registry.add({"random",
                "random placement control: uniformly random ε+1 processors "
                "per task (FTSA timing and channels)",
                {
                    {"eps", "1",
                     "failures tolerated (epsilon+1 replicas per task)"},
                    {"seed", "0", "placement/tie-breaking seed"},
                },
                [](const SchedulerOptions& o) -> SchedulerPtr {
                  RandomPlacementOptions options;
                  options.epsilon = o.get_size("eps", 1);
                  options.seed = o.get_u64("seed", 0);
                  return std::make_unique<RandomScheduler>(options);
                }});
  return registry;
}

}  // namespace

SchedulerRegistry& SchedulerRegistry::global() {
  static SchedulerRegistry registry = make_global_registry();
  return registry;
}

SchedulerPtr make_scheduler(
    const std::string& spec,
    const std::vector<std::pair<std::string, std::string>>& defaults) {
  return SchedulerRegistry::global().create_with_defaults(spec, defaults);
}

}  // namespace ftsched
