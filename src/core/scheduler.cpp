#include "ftsched/core/scheduler.hpp"

#include <algorithm>
#include <sstream>

#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {

std::string join(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(value, &pos);
    FTSCHED_REQUIRE(pos == value.size(), "trailing characters");
    return v;
  } catch (const std::logic_error&) {
    throw InvalidArgument("scheduler option '" + key +
                          "': expected a non-negative integer, got '" + value +
                          "'");
  }
}

const char* priority_token(FtsaPriority p) {
  switch (p) {
    case FtsaPriority::kCriticalness:
      return "crit";
    case FtsaPriority::kBottomLevel:
      return "bl";
    case FtsaPriority::kRandom:
      return "random";
  }
  return "crit";
}

FtsaPriority parse_priority(const std::string& value) {
  if (value == "crit") return FtsaPriority::kCriticalness;
  if (value == "bl") return FtsaPriority::kBottomLevel;
  if (value == "random") return FtsaPriority::kRandom;
  throw InvalidArgument("scheduler option 'prio': expected crit|bl|random, got '" +
                        value + "'");
}

const char* selector_token(McSelector s) {
  return s == McSelector::kGreedy ? "greedy" : "matching";
}

McSelector parse_selector(const std::string& value) {
  if (value == "greedy") return McSelector::kGreedy;
  if (value == "matching") return McSelector::kBinarySearchMatching;
  throw InvalidArgument(
      "scheduler option 'selector': expected greedy|matching, got '" + value +
      "'");
}

/// Appends "key=value" to the option tail being built.
void emit(std::vector<std::string>& parts, const std::string& key,
          const std::string& value) {
  parts.push_back(key + "=" + value);
}

std::string spec_string(const std::string& name,
                        const std::vector<std::string>& parts) {
  if (parts.empty()) return name;
  return name + ":" + join(parts, ",");
}

}  // namespace

// ---------------------------------------------------------- SchedulerOptions

SchedulerOptions SchedulerOptions::parse(const std::string& text) {
  SchedulerOptions options;
  if (text.empty()) return options;
  if (text.back() == ',') {
    // getline would silently drop the empty trailing segment.
    throw InvalidArgument("malformed scheduler options '" + text +
                          "' (trailing comma)");
  }
  std::istringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw InvalidArgument("malformed scheduler option '" + item +
                            "' (expected key=value)");
    }
    const std::string key = item.substr(0, eq);
    if (options.values_.find(key) != options.values_.end()) {
      throw InvalidArgument("duplicate scheduler option '" + key + "'");
    }
    options.values_[key] = item.substr(eq + 1);
  }
  return options;
}

bool SchedulerOptions::has(const std::string& key) const {
  return values_.find(key) != values_.end();
}

void SchedulerOptions::set_default(const std::string& key,
                                   const std::string& value) {
  values_.emplace(key, value);
}

void SchedulerOptions::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

const std::string& SchedulerOptions::get(const std::string& key) const {
  const auto it = values_.find(key);
  FTSCHED_REQUIRE(it != values_.end(), "missing scheduler option '" + key + "'");
  return it->second;
}

std::string SchedulerOptions::get(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::size_t SchedulerOptions::get_size(const std::string& key,
                                       std::size_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return static_cast<std::size_t>(parse_u64(key, it->second));
}

std::uint64_t SchedulerOptions::get_u64(const std::string& key,
                                        std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_u64(key, it->second);
}

bool SchedulerOptions::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true") return true;
  if (v == "0" || v == "false") return false;
  throw InvalidArgument("scheduler option '" + key +
                        "': expected 0|1|false|true, got '" + v + "'");
}

std::vector<std::string> SchedulerOptions::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

std::string SchedulerOptions::to_string() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const auto& [key, value] : values_) parts.push_back(key + "=" + value);
  return join(parts, ",");
}

// ------------------------------------------------------------------ adapters

std::string FtsaScheduler::name() const {
  std::vector<std::string> parts;
  if (options_.epsilon != 1) emit(parts, "eps", std::to_string(options_.epsilon));
  if (options_.comm.ports != 0) {
    emit(parts, "ports", std::to_string(options_.comm.ports));
  }
  if (options_.priority != FtsaPriority::kCriticalness) {
    emit(parts, "prio", priority_token(options_.priority));
  }
  if (options_.seed != 0) emit(parts, "seed", std::to_string(options_.seed));
  return spec_string("ftsa", parts);
}

std::string FtsaScheduler::describe() const {
  std::ostringstream os;
  os << "FTSA (paper Alg. 4.1): criticalness list scheduling, epsilon="
     << options_.epsilon << ", priority=" << priority_token(options_.priority);
  if (options_.comm.enabled()) {
    os << ", contention-aware (" << options_.comm.ports << " send ports)";
  }
  return os.str();
}

ReplicatedSchedule FtsaScheduler::run(const CostModel& costs) const {
  return ftsa_schedule(costs, options_);
}

std::string McFtsaScheduler::name() const {
  std::vector<std::string> parts;
  if (!options_.enforce_fault_tolerance) emit(parts, "enforce", "0");
  if (options_.epsilon != 1) emit(parts, "eps", std::to_string(options_.epsilon));
  if (options_.comm.ports != 0) {
    emit(parts, "ports", std::to_string(options_.comm.ports));
  }
  if (options_.seed != 0) emit(parts, "seed", std::to_string(options_.seed));
  if (options_.selector != McSelector::kGreedy) {
    emit(parts, "selector", selector_token(options_.selector));
  }
  return spec_string("mc-ftsa", parts);
}

std::string McFtsaScheduler::describe() const {
  std::ostringstream os;
  os << "MC-FTSA (paper §4.2): FTSA with minimum communications, epsilon="
     << options_.epsilon << ", selector=" << selector_token(options_.selector)
     << (options_.enforce_fault_tolerance ? ", end-to-end repair on"
                                          : ", paper-faithful (no repair)");
  return os.str();
}

ReplicatedSchedule McFtsaScheduler::run(const CostModel& costs) const {
  return mc_ftsa_schedule(costs, options_);
}

std::string FtbarScheduler::name() const {
  std::vector<std::string> parts;
  if (!options_.use_minimize_start_time) emit(parts, "mst", "0");
  if (options_.npf != 1) emit(parts, "npf", std::to_string(options_.npf));
  if (options_.seed != 0) emit(parts, "seed", std::to_string(options_.seed));
  return spec_string("ftbar", parts);
}

std::string FtbarScheduler::describe() const {
  std::ostringstream os;
  os << "FTBAR (Girault et al., DSN'03): schedule-pressure active replication, "
        "npf="
     << options_.npf << ", minimize-start-time duplication "
     << (options_.use_minimize_start_time ? "on" : "off");
  return os.str();
}

ReplicatedSchedule FtbarScheduler::run(const CostModel& costs) const {
  return ftbar_schedule(costs, options_);
}

std::string HeftScheduler::name() const {
  std::vector<std::string> parts;
  if (!options_.insertion) emit(parts, "insertion", "0");
  return spec_string("heft", parts);
}

std::string HeftScheduler::describe() const {
  return std::string("HEFT (Topcuoglu et al.): fault-free baseline, ") +
         (options_.insertion ? "insertion-based" : "append-only") +
         " earliest finish time";
}

ReplicatedSchedule HeftScheduler::run(const CostModel& costs) const {
  return heft_schedule(costs, options_);
}

std::string CpopScheduler::name() const { return "cpop"; }

std::string CpopScheduler::describe() const {
  return "CPOP (Topcuoglu et al.): fault-free baseline, critical path pinned "
         "to one processor";
}

ReplicatedSchedule CpopScheduler::run(const CostModel& costs) const {
  return cpop_schedule(costs);
}

// ------------------------------------------------------------------ registry

bool SchedulerRegistry::Entry::supports(const std::string& key) const {
  return std::any_of(options.begin(), options.end(),
                     [&](const OptionSpec& o) { return o.key == key; });
}

void SchedulerRegistry::add(Entry entry) {
  FTSCHED_REQUIRE(!entry.name.empty(), "scheduler name must not be empty");
  FTSCHED_REQUIRE(entry.name.find(':') == std::string::npos,
                  "scheduler name must not contain ':'");
  FTSCHED_REQUIRE(entries_.find(entry.name) == entries_.end(),
                  "scheduler '" + entry.name + "' already registered");
  const std::string name = entry.name;
  entries_.emplace(name, std::move(entry));
}

bool SchedulerRegistry::contains(const std::string& name) const {
  return entries_.find(name) != entries_.end();
}

const SchedulerRegistry::Entry& SchedulerRegistry::entry(
    const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw InvalidArgument("unknown scheduler '" + name + "' (known: " +
                          join(names(), "|") + ")");
  }
  return it->second;
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) out.push_back(name);
  return out;
}

void SchedulerRegistry::split_spec(const std::string& spec, std::string& name,
                                   std::string& option_text) {
  const auto colon = spec.find(':');
  name = spec.substr(0, colon);
  option_text = colon == std::string::npos ? std::string() : spec.substr(colon + 1);
}

SchedulerPtr SchedulerRegistry::create(const std::string& spec) const {
  std::string name;
  std::string option_text;
  split_spec(spec, name, option_text);
  return create(name, SchedulerOptions::parse(option_text));
}

SchedulerPtr SchedulerRegistry::create(const std::string& name,
                                       const SchedulerOptions& options) const {
  const Entry& e = entry(name);
  for (const std::string& key : options.keys()) {
    if (!e.supports(key)) {
      std::vector<std::string> supported;
      supported.reserve(e.options.size());
      for (const OptionSpec& o : e.options) supported.push_back(o.key);
      throw InvalidArgument(
          "scheduler '" + name + "' does not accept option '" + key + "'" +
          (supported.empty() ? std::string(" (no options)")
                             : " (supported: " + join(supported, "|") + ")"));
    }
  }
  return e.factory(options);
}

namespace {

CommAwareness parse_comm(const SchedulerOptions& o) {
  CommAwareness comm;
  comm.ports = o.get_size("ports", 0);
  return comm;
}

FtsaOptions parse_ftsa_options(const SchedulerOptions& o) {
  FtsaOptions options;
  options.epsilon = o.get_size("eps", 1);
  options.seed = o.get_u64("seed", 0);
  options.priority = parse_priority(o.get("prio", "crit"));
  options.comm = parse_comm(o);
  return options;
}

McFtsaOptions parse_mc_ftsa_options(const SchedulerOptions& o,
                                    bool enforce_default) {
  McFtsaOptions options;
  options.epsilon = o.get_size("eps", 1);
  options.seed = o.get_u64("seed", 0);
  options.selector = parse_selector(o.get("selector", "greedy"));
  options.enforce_fault_tolerance = o.get_bool("enforce", enforce_default);
  options.comm = parse_comm(o);
  return options;
}

const std::vector<SchedulerRegistry::OptionSpec> kFtsaOptionSpecs{
    {"eps", "1", "failures tolerated (epsilon+1 replicas per task)"},
    {"seed", "0", "tie-breaking seed"},
    {"prio", "crit", "free-task priority: crit|bl|random"},
    {"ports", "0", "send ports per processor (0 = contention-free)"},
};

const std::vector<SchedulerRegistry::OptionSpec> kMcFtsaOptionSpecs{
    {"eps", "1", "failures tolerated (epsilon+1 replicas per task)"},
    {"seed", "0", "tie-breaking seed"},
    {"selector", "greedy", "channel selector: greedy|matching"},
    {"enforce", "1", "end-to-end fault-tolerance repair: 0|1"},
    {"ports", "0", "send ports per processor (0 = contention-free)"},
};

std::vector<SchedulerRegistry::OptionSpec> mc_ftsa_paper_option_specs() {
  std::vector<SchedulerRegistry::OptionSpec> specs = kMcFtsaOptionSpecs;
  for (auto& spec : specs) {
    if (spec.key == "enforce") spec.default_value = "0";
  }
  return specs;
}

SchedulerRegistry make_global_registry() {
  SchedulerRegistry registry;
  registry.add({"ftsa",
                "FTSA: the paper's fault-tolerant list scheduler (Alg. 4.1)",
                kFtsaOptionSpecs,
                [](const SchedulerOptions& o) -> SchedulerPtr {
                  return std::make_unique<FtsaScheduler>(parse_ftsa_options(o));
                }});
  registry.add({"mc-ftsa",
                "MC-FTSA: FTSA with minimum communications (paper §4.2)",
                kMcFtsaOptionSpecs,
                [](const SchedulerOptions& o) -> SchedulerPtr {
                  return std::make_unique<McFtsaScheduler>(
                      parse_mc_ftsa_options(o, /*enforce_default=*/true));
                }});
  registry.add({"mc-ftsa-paper",
                "MC-FTSA with end-to-end repair off (paper-faithful variant)",
                mc_ftsa_paper_option_specs(),
                [](const SchedulerOptions& o) -> SchedulerPtr {
                  return std::make_unique<McFtsaScheduler>(
                      parse_mc_ftsa_options(o, /*enforce_default=*/false));
                }});
  registry.add({"ftbar",
                "FTBAR: schedule-pressure active replication (DSN'03)",
                {
                    {"npf", "1", "failures tolerated (npf+1 replicas per task)"},
                    {"eps", "1", "alias of npf"},
                    {"seed", "0", "tie-breaking seed"},
                    {"mst", "1", "minimize-start-time duplication: 0|1"},
                },
                [](const SchedulerOptions& o) -> SchedulerPtr {
                  FtbarOptions options;
                  options.npf = o.get_size("npf", o.get_size("eps", 1));
                  options.seed = o.get_u64("seed", 0);
                  options.use_minimize_start_time = o.get_bool("mst", true);
                  return std::make_unique<FtbarScheduler>(options);
                }});
  registry.add({"heft",
                "HEFT: fault-free earliest-finish-time baseline",
                {
                    {"insertion", "1", "insertion-based placement: 0|1"},
                },
                [](const SchedulerOptions& o) -> SchedulerPtr {
                  HeftOptions options;
                  options.insertion = o.get_bool("insertion", true);
                  return std::make_unique<HeftScheduler>(options);
                }});
  registry.add({"cpop",
                "CPOP: fault-free critical-path-on-a-processor baseline",
                {},
                [](const SchedulerOptions&) -> SchedulerPtr {
                  return std::make_unique<CpopScheduler>();
                }});
  return registry;
}

}  // namespace

SchedulerRegistry& SchedulerRegistry::global() {
  static SchedulerRegistry registry = make_global_registry();
  return registry;
}

SchedulerPtr make_scheduler(
    const std::string& spec,
    const std::vector<std::pair<std::string, std::string>>& defaults) {
  const SchedulerRegistry& registry = SchedulerRegistry::global();
  std::string name;
  std::string option_text;
  SchedulerRegistry::split_spec(spec, name, option_text);
  SchedulerOptions options = SchedulerOptions::parse(option_text);
  const SchedulerRegistry::Entry& entry = registry.entry(name);
  for (const auto& [key, value] : defaults) {
    if (entry.supports(key)) options.set_default(key, value);
  }
  return registry.create(name, options);
}

}  // namespace ftsched
