#include "ftsched/core/robustness.hpp"

#include <algorithm>
#include <sstream>

#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {

/// Dynamic bitset over processors (mirrors the engine's internal KillSet;
/// kept separate so the public analysis has no dependency on engine
/// internals).
class Bits {
 public:
  explicit Bits(std::size_t bit_count) : words_((bit_count + 63) / 64, 0) {}

  void set(std::size_t i) noexcept {
    words_[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  void or_with(const Bits& other) noexcept {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] |= other.words_[w];
    }
  }
  void and_with(const Bits& other) noexcept {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] &= other.words_[w];
    }
  }
  [[nodiscard]] bool intersects(const Bits& other) const noexcept {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] & other.words_[w]) return true;
    }
    return false;
  }
  [[nodiscard]] bool empty() const noexcept {
    for (std::uint64_t w : words_) {
      if (w) return false;
    }
    return true;
  }
  /// Index of the lowest set bit; undefined when empty().
  [[nodiscard]] std::size_t first() const noexcept {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w]) {
        return w * 64 +
               static_cast<std::size_t>(__builtin_ctzll(words_[w]));
      }
    }
    return 0;
  }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace

std::string RobustnessReport::summary() const {
  std::ostringstream os;
  switch (verdict) {
    case RobustnessVerdict::kCertifiedRobust:
      os << "certified robust: no <= epsilon crash set kills any task";
      break;
    case RobustnessVerdict::kSingleCrashFatal:
      os << "NOT fault tolerant: " << fatal_tasks.size()
         << " task(s) killable by a single crash (e.g. P"
         << fatal_processors.front().value() << " kills task "
         << fatal_tasks.front().value() << ")";
      break;
    case RobustnessVerdict::kInconclusive:
      os << "inconclusive: no single fatal processor, but "
         << overlapping_tasks.size()
         << " task(s) have overlapping replica kill sets";
      break;
  }
  return os.str();
}

RobustnessReport analyze_robustness(const ReplicatedSchedule& schedule) {
  const TaskGraph& g = schedule.graph();
  const std::size_t m = schedule.platform().proc_count();
  const std::size_t epsilon = schedule.epsilon();

  // kill[task][replica]: processors whose lone crash starves the replica.
  std::vector<std::vector<Bits>> kill(g.task_count());
  // certificate_ok stays true while every multi-channel (replica, edge)
  // pair has >= ε+1 sources with pairwise-disjoint kill sets.
  bool certificate_ok = true;

  RobustnessReport report;
  std::vector<char> overlap_flag(g.task_count(), 0);

  for (TaskId t : g.topological_order()) {
    const auto& reps = schedule.replicas(t);
    FTSCHED_REQUIRE(!reps.empty(), "schedule incomplete: task unplaced");
    kill[t.index()].assign(reps.size(), Bits(m));
    for (std::size_t k = 0; k < reps.size(); ++k) {
      kill[t.index()][k].set(reps[k].proc.index());
    }
    // Accumulate per (replica, in-edge) channel sources.
    for (std::size_t e : g.in_edges(t)) {
      const TaskId src_task = g.edge(e).src;
      std::vector<std::vector<std::size_t>> sources(reps.size());
      for (const Channel& c : schedule.channels(e)) {
        sources[c.dst_replica].push_back(c.src_replica);
      }
      for (std::size_t k = 0; k < reps.size(); ++k) {
        FTSCHED_REQUIRE(!sources[k].empty(),
                        "replica lacks an inbound channel for an edge");
        // Single crash starves the edge iff it starves *every* source.
        Bits edge_kill = kill[src_task.index()][sources[k][0]];
        for (std::size_t i = 1; i < sources[k].size(); ++i) {
          edge_kill.and_with(kill[src_task.index()][sources[k][i]]);
        }
        kill[t.index()][k].or_with(edge_kill);
        if (sources[k].size() > 1) {
          // Certificate condition for multi-channel pairs: enough sources,
          // pairwise-disjoint kill sets (=> no <= ε coalition starves it).
          if (sources[k].size() < epsilon + 1) {
            certificate_ok = false;
          } else {
            for (std::size_t a = 0;
                 a < sources[k].size() && certificate_ok; ++a) {
              for (std::size_t b = a + 1; b < sources[k].size(); ++b) {
                if (kill[src_task.index()][sources[k][a]].intersects(
                        kill[src_task.index()][sources[k][b]])) {
                  certificate_ok = false;
                  break;
                }
              }
            }
          }
        }
      }
    }
    // Single-crash fatality: some processor in every replica's kill set.
    Bits fatal = kill[t.index()][0];
    for (std::size_t k = 1; k < reps.size(); ++k) {
      fatal.and_with(kill[t.index()][k]);
    }
    if (!fatal.empty() && epsilon >= 1) {
      report.fatal_processors.emplace_back(fatal.first());
      report.fatal_tasks.push_back(t);
    }
    // Pairwise overlap: the ε >= 2 coalition criterion.
    for (std::size_t a = 0; a < reps.size() && !overlap_flag[t.index()];
         ++a) {
      for (std::size_t b = a + 1; b < reps.size(); ++b) {
        if (kill[t.index()][a].intersects(kill[t.index()][b])) {
          overlap_flag[t.index()] = 1;
          break;
        }
      }
    }
    if (overlap_flag[t.index()]) report.overlapping_tasks.push_back(t);
  }

  if (!report.fatal_processors.empty()) {
    report.verdict = RobustnessVerdict::kSingleCrashFatal;
  } else if (report.overlapping_tasks.empty() && certificate_ok) {
    report.verdict = RobustnessVerdict::kCertifiedRobust;
  } else if (epsilon <= 1) {
    // With ε <= 1 the single-crash analysis is complete: no fatal
    // processor means the schedule survives any single crash.
    report.verdict = RobustnessVerdict::kCertifiedRobust;
  } else {
    report.verdict = RobustnessVerdict::kInconclusive;
  }
  return report;
}

}  // namespace ftsched
