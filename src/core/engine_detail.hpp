// Internal: the list-scheduling engine shared by FTSA and MC-FTSA.
//
// Both algorithms run the same outer loop (Algorithm 4.1): pick the most
// critical free task, evaluate eq. (1) on every processor, keep the ε+1
// processors with minimal finish time, place the replicas, release free
// successors.  They differ only in how predecessor→task channels are
// realized, which is captured by ChannelPolicy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "ftsched/core/comm_awareness.hpp"
#include "ftsched/core/schedule.hpp"
#include "ftsched/platform/cost_model.hpp"
#include "ftsched/util/ids.hpp"

namespace ftsched::detail {

enum class ChannelPolicy {
  kAllPairs,               // FTSA: every replica pair (intra-proc shortcut)
  kMcGreedy,               // MC-FTSA, greedy edge selection (§4.2)
  kMcBinarySearchMatching  // MC-FTSA, binary search + Hopcroft–Karp (§4.2)
};

/// Free-task priority used by the list loop (ablation of §4.1's
/// criticalness definition; the paper uses kCriticalness).
enum class PriorityMode {
  kCriticalness,  // tℓ(t) + bℓ(t), the paper's definition
  kBottomLevel,   // bℓ(t) only (static priority)
  kRandom,        // uniformly random (control)
};

struct EngineOptions {
  std::size_t epsilon = 1;
  std::uint64_t seed = 0;  // tie-break randomization in α
  ChannelPolicy policy = ChannelPolicy::kAllPairs;
  /// Control baseline: draw the ε+1 target processors uniformly at random
  /// instead of keeping the minimal-finish-time set (replica timing and
  /// channel realization are unchanged, so the schedule stays a valid
  /// ε-fault-tolerant schedule — just a deliberately uninformed one).
  bool random_placement = false;
  /// MC policies only: enforce *end-to-end* ε-fault-tolerance.  The paper's
  /// Prop. 4.3 is a per-edge guarantee; with several predecessors, one
  /// processor may be the selected source of two different replicas via two
  /// different edges, so a single crash can starve every replica of a task
  /// (our exhaustive validator finds such cases).  When true, the engine
  /// tracks per-replica kill sets and locally reverts a vulnerable task's
  /// channels to all-pairs, restoring Theorem 4.1.
  bool repair_vulnerable = true;
  PriorityMode priority = PriorityMode::kCriticalness;
  /// Send-port awareness of arrival estimates (0 = contention-free).
  CommAwareness comm;
  /// When set, enforce the §4.3 both-criteria test: scheduling throws
  /// Infeasible as soon as max_{P ∈ P^(ε+1)} F(t,P) > deadline[t].
  const std::vector<double>* deadlines = nullptr;
  const char* algorithm_name = "FTSA";
};

/// Runs the engine to completion and returns the schedule.
/// Throws InvalidArgument on bad inputs and Infeasible when a deadline
/// cannot be met (only when options.deadlines is set).
[[nodiscard]] ReplicatedSchedule run_list_engine(const CostModel& costs,
                                                 const EngineOptions& options);

}  // namespace ftsched::detail
