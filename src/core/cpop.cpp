#include "ftsched/core/cpop.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "ftsched/core/priorities.hpp"
#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {

struct Slot {
  double start;
  double finish;
};

double earliest_slot(const std::vector<Slot>& slots, double ready,
                     double duration) {
  double candidate = ready;
  for (const Slot& s : slots) {
    if (candidate + duration <= s.start + 1e-12) return candidate;
    candidate = std::max(candidate, s.finish);
  }
  return candidate;
}

void insert_slot(std::vector<Slot>& slots, Slot s) {
  const auto pos = std::lower_bound(
      slots.begin(), slots.end(), s,
      [](const Slot& a, const Slot& b) { return a.start < b.start; });
  slots.insert(pos, s);
}

}  // namespace

ReplicatedSchedule cpop_schedule(const CostModel& costs) {
  const TaskGraph& g = costs.graph();
  const Platform& platform = costs.platform();
  const std::size_t m = platform.proc_count();

  const auto ru = upward_ranks(costs);
  const auto rd = static_top_levels(costs);
  std::vector<double> priority(g.task_count());
  double cp_length = 0.0;
  for (TaskId t : g.tasks()) {
    priority[t.index()] = ru[t.index()] + rd[t.index()];
    cp_length = std::max(cp_length, priority[t.index()]);
  }

  // Critical path: walk from the critical entry task through critical
  // successors (priority equal to the path length, up to fp noise).
  const double tol = 1e-9 * (1.0 + cp_length);
  std::vector<char> on_cp(g.task_count(), 0);
  TaskId walk;
  for (TaskId t : g.entry_tasks()) {
    if (priority[t.index()] >= cp_length - tol) {
      walk = t;
      break;
    }
  }
  FTSCHED_REQUIRE(walk.valid(), "no critical entry task found");
  while (walk.valid()) {
    on_cp[walk.index()] = 1;
    TaskId next;
    for (std::size_t e : g.out_edges(walk)) {
      const TaskId s = g.edge(e).dst;
      if (priority[s.index()] >= cp_length - tol) {
        next = s;
        break;
      }
    }
    walk = next;
  }

  // The critical-path processor minimizes the summed execution time of
  // the critical tasks.
  ProcId cp_proc{0u};
  double best_sum = std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p < m; ++p) {
    double sum = 0.0;
    for (TaskId t : g.tasks()) {
      if (on_cp[t.index()]) sum += costs.exec(t, ProcId{p});
    }
    if (sum < best_sum) {
      best_sum = sum;
      cp_proc = ProcId{p};
    }
  }

  // Priority-driven list scheduling over ready tasks.
  ReplicatedSchedule schedule(costs, /*epsilon=*/0, "CPOP");
  std::vector<std::vector<Slot>> timeline(m);
  std::vector<Replica> placed(g.task_count());
  std::vector<std::size_t> pending(g.task_count());
  for (TaskId t : g.tasks()) pending[t.index()] = g.in_degree(t);

  using Entry = std::pair<double, std::uint32_t>;  // (priority, task id)
  std::priority_queue<Entry> ready;
  for (TaskId t : g.entry_tasks()) {
    ready.emplace(priority[t.index()], t.value());
  }
  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const TaskId t{ready.top().second};
    ready.pop();
    auto eft_on = [&](ProcId pj) {
      double arrival = 0.0;
      for (std::size_t e : g.in_edges(t)) {
        const Edge& edge = g.edge(e);
        const Replica& src = placed[edge.src.index()];
        arrival = std::max(arrival, src.finish +
                                        edge.volume *
                                            platform.delay(src.proc, pj));
      }
      const double duration = costs.exec(t, pj);
      const double start =
          earliest_slot(timeline[pj.index()], arrival, duration);
      return Replica{pj, start, start + duration, start, start + duration};
    };
    Replica best;
    if (on_cp[t.index()]) {
      best = eft_on(cp_proc);
    } else {
      double best_finish = std::numeric_limits<double>::infinity();
      for (std::size_t p = 0; p < m; ++p) {
        const Replica r = eft_on(ProcId{p});
        if (r.finish < best_finish) {
          best_finish = r.finish;
          best = r;
        }
      }
    }
    insert_slot(timeline[best.proc.index()], Slot{best.start, best.finish});
    placed[t.index()] = best;
    schedule.place_task(t, {best});
    ++scheduled;
    for (std::size_t e : g.out_edges(t)) {
      const TaskId s = g.edge(e).dst;
      if (--pending[s.index()] == 0) {
        ready.emplace(priority[s.index()], s.value());
      }
    }
  }
  FTSCHED_REQUIRE(scheduled == g.task_count(), "CPOP missed tasks (cycle?)");
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    schedule.set_channels(e, {Channel{0, 0}});
  }
  return schedule;
}

}  // namespace ftsched
