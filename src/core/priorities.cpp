#include "ftsched/core/priorities.hpp"

#include <algorithm>
#include <cstdint>

namespace ftsched {

namespace {

/// Thread-local memo of the most recent bottom-level computation, keyed by
/// CostModel::revision().  One instance evaluation runs five scheduler
/// passes (ftsa:eps=0, ftbar:npf=0, FTSA, MC-FTSA, FTBAR) over the same
/// cost model on the same worker thread, and every pass starts from bℓ —
/// the memo turns four of the five traversals into a plain copy.  The
/// revision key makes the memo immune to address reuse and to scale_exec
/// mutation, and thread locality makes it lock-free.
struct BottomLevelMemo {
  std::uint64_t revision = 0;  // CostModel revisions start at 1
  std::vector<double> levels;
};

BottomLevelMemo& bottom_level_memo() {
  thread_local BottomLevelMemo memo;
  return memo;
}

}  // namespace

std::vector<double> bottom_levels(const CostModel& costs) {
  BottomLevelMemo& memo = bottom_level_memo();
  if (memo.revision == costs.revision()) return memo.levels;
  const TaskGraph& g = costs.graph();
  std::vector<double> bl(g.task_count(), 0.0);
  const auto order = g.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double best = 0.0;
    for (std::size_t e : g.out_edges(t)) {
      const TaskId s = g.edge(e).dst;
      best = std::max(best, costs.avg_comm(e) + bl[s.index()]);
    }
    bl[t.index()] = costs.avg_exec(t) + best;
  }
  memo.levels = bl;
  memo.revision = costs.revision();
  return bl;
}

std::vector<double> static_top_levels(const CostModel& costs) {
  const TaskGraph& g = costs.graph();
  std::vector<double> tl(g.task_count(), 0.0);
  for (TaskId t : g.topological_order()) {
    for (std::size_t e : g.out_edges(t)) {
      const TaskId s = g.edge(e).dst;
      tl[s.index()] = std::max(
          tl[s.index()], tl[t.index()] + costs.avg_exec(t) + costs.avg_comm(e));
    }
  }
  return tl;
}

}  // namespace ftsched
