#include "ftsched/core/priorities.hpp"

#include <algorithm>

namespace ftsched {

std::vector<double> bottom_levels(const CostModel& costs) {
  const TaskGraph& g = costs.graph();
  std::vector<double> bl(g.task_count(), 0.0);
  const auto order = g.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double best = 0.0;
    for (std::size_t e : g.out_edges(t)) {
      const TaskId s = g.edge(e).dst;
      best = std::max(best, costs.avg_comm(e) + bl[s.index()]);
    }
    bl[t.index()] = costs.avg_exec(t) + best;
  }
  return bl;
}

std::vector<double> static_top_levels(const CostModel& costs) {
  const TaskGraph& g = costs.graph();
  std::vector<double> tl(g.task_count(), 0.0);
  for (TaskId t : g.topological_order()) {
    for (std::size_t e : g.out_edges(t)) {
      const TaskId s = g.edge(e).dst;
      tl[s.index()] = std::max(
          tl[s.index()], tl[t.index()] + costs.avg_exec(t) + costs.avg_comm(e));
    }
  }
  return tl;
}

}  // namespace ftsched
