#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "ftsched/core/avl.hpp"
#include "ftsched/core/matching.hpp"
#include "ftsched/core/placement.hpp"
#include "ftsched/core/priorities.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/rng.hpp"
#include "engine_detail.hpp"

namespace ftsched::detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// α entries: ordered by criticalness, then a random tie-break key (the
/// paper breaks ties randomly), then task id for full determinism.
struct AlphaKey {
  double priority = 0.0;
  std::uint64_t tie = 0;
  TaskId task;

  friend bool operator<(const AlphaKey& a, const AlphaKey& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.tie != b.tie) return a.tie < b.tie;
    return a.task > b.task;  // lower id wins at equal priority+tie
  }
};

/// A booked send interval on one port lane (communication awareness).
struct SendSlot {
  double start;
  double finish;
};

/// One candidate channel of the §4.2 bipartite graph.
struct ChannelCandidate {
  std::size_t left;    // replica index of the predecessor
  std::size_t right;   // index into the chosen processor set A(t)
  double weight;       // completion estimate, see §4.2
  bool internal;       // source proc == target proc
};

/// Set of processors whose individual failure kills a replica (its own
/// processor, plus — transitively through single-channel edges — the
/// processors whose failure starves one of its inputs).  Dynamic bitset
/// over the platform's processors.
class KillSet {
 public:
  KillSet() = default;
  explicit KillSet(std::size_t proc_count)
      : words_((proc_count + 63) / 64, 0) {}

  void add(ProcId p) noexcept {
    words_[p.index() / 64] |= std::uint64_t{1} << (p.index() % 64);
  }
  /// Re-zeroes for `proc_count` processors, keeping the allocation (scratch
  /// reuse across tasks).
  void reset(std::size_t proc_count) {
    words_.assign((proc_count + 63) / 64, 0);
  }
  void merge(const KillSet& other) noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
  }
  [[nodiscard]] bool intersects(const KillSet& other) const noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }
  /// True iff this ∩ universe ⊄ allowed, i.e. this set touches a processor
  /// of `universe` outside `allowed`.
  [[nodiscard]] bool conflicts_outside(const KillSet& universe,
                                       const KillSet& allowed) const noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & universe.words_[i] & ~allowed.words_[i]) return true;
    }
    return false;
  }

 private:
  std::vector<std::uint64_t> words_;
};

class Engine {
 public:
  Engine(const CostModel& costs, const EngineOptions& options)
      : costs_(costs),
        g_(costs.graph()),
        platform_(costs.platform()),
        options_(options),
        m_(platform_.proc_count()),
        replica_count_(options.epsilon + 1),
        schedule_(costs, options.epsilon, options.algorithm_name),
        rng_(options.seed) {
    FTSCHED_REQUIRE(replica_count_ <= m_,
                    "epsilon+1 exceeds the number of processors");
    if (options_.deadlines != nullptr) {
      FTSCHED_REQUIRE(options_.deadlines->size() == g_.task_count(),
                      "deadline vector size mismatch");
    }
    if (options_.comm.enabled()) {
      send_lanes_.assign(
          m_, std::vector<std::vector<SendSlot>>(options_.comm.ports));
    }
  }

  ReplicatedSchedule run() {
    const auto bl = bottom_levels(costs_);
    pending_.assign(g_.task_count(), 0);
    for (TaskId t : g_.tasks()) pending_[t.index()] = g_.in_degree(t);
    ready_.reset(m_);
    ready_pess_.reset(m_);

    for (TaskId t : g_.entry_tasks()) push_free(t, /*top_level=*/0.0, bl);

    kills_.assign(g_.task_count(), {});

    std::size_t scheduled = 0;
    while (!alpha_.empty()) {
      const TaskId t = alpha_.extract_max().task;
      schedule_task(t);
      ++scheduled;
      for (std::size_t e : g_.out_edges(t)) {
        const TaskId s = g_.edge(e).dst;
        if (--pending_[s.index()] == 0) {
          push_free(s, dynamic_top_level(s), bl);
        }
      }
    }
    FTSCHED_REQUIRE(scheduled == g_.task_count(),
                    "scheduling loop did not reach every task (cycle?)");
    schedule_.set_repaired_tasks(std::move(repaired_));
    return std::move(schedule_);
  }

 private:
  void push_free(TaskId t, double top_level, const std::vector<double>& bl) {
    double priority = 0.0;
    switch (options_.priority) {
      case PriorityMode::kCriticalness:
        priority = top_level + bl[t.index()];
        break;
      case PriorityMode::kBottomLevel:
        priority = bl[t.index()];
        break;
      case PriorityMode::kRandom:
        priority = 0.0;  // the random tie key decides
        break;
    }
    alpha_.insert(AlphaKey{priority, rng_(), t});
  }

  /// Paper §4.1 dynamic top level: worst-case outgoing link from the
  /// earliest-finishing replica of each predecessor.
  double dynamic_top_level(TaskId t) const {
    double tl = 0.0;
    for (std::size_t e : g_.in_edges(t)) {
      const Edge& edge = g_.edge(e);
      double best = kInf;
      for (const Replica& r : schedule_.replicas(edge.src)) {
        best = std::min(best, r.finish + edge.volume *
                                             platform_.max_delay_from(r.proc));
      }
      tl = std::max(tl, best);
    }
    return tl;
  }

  /// Earliest start >= ready of a `duration`-long send in `lane`
  /// (gap-aware, like the one-port simulator's work-conserving ports).
  static double lane_gap(const std::vector<SendSlot>& lane, double ready,
                         double duration) {
    double candidate = ready;
    for (const SendSlot& s : lane) {
      if (candidate + duration <= s.start + 1e-12) break;
      candidate = std::max(candidate, s.finish);
    }
    return candidate;
  }

  /// Best (lane, send start) over the source processor's port lanes.
  std::pair<std::size_t, double> best_lane(ProcId src_proc, double ready,
                                           double duration) const {
    const auto& lanes = send_lanes_[src_proc.index()];
    std::size_t best = 0;
    double best_start = kInf;
    for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
      const double start = lane_gap(lanes[lane], ready, duration);
      if (start < best_start) {
        best_start = start;
        best = lane;
      }
    }
    return {best, best_start};
  }

  /// Arrival time of one channel (src replica → processor pj), including
  /// the send-port waiting time when communication awareness is on.
  double channel_arrival(const Replica& src, const Edge& edge,
                         ProcId pj) const {
    const double duration = edge.volume * platform_.delay(src.proc, pj);
    if (duration <= 0.0 || !options_.comm.enabled()) {
      return src.finish + duration;
    }
    return best_lane(src.proc, src.finish, duration).second + duration;
  }

  /// Books one committed channel onto a send port of its source processor.
  void book_send(const Replica& src, const Edge& edge, ProcId dst_proc) {
    if (!options_.comm.enabled()) return;
    const double duration = edge.volume * platform_.delay(src.proc, dst_proc);
    if (duration <= 0.0) return;
    const auto [lane_index, start] =
        best_lane(src.proc, src.finish, duration);
    auto& lane = send_lanes_[src.proc.index()][lane_index];
    const SendSlot slot{start, start + duration};
    const auto pos = std::lower_bound(
        lane.begin(), lane.end(), slot,
        [](const SendSlot& a, const SendSlot& b) { return a.start < b.start; });
    lane.insert(pos, slot);
  }

  /// eq. (1): failure-free data-arrival time of task `t` on processor j,
  /// taking for each predecessor the best replica channel.
  void arrival_times(TaskId t, std::vector<double>& arrival) const {
    arrival.assign(m_, 0.0);
    for (std::size_t e : g_.in_edges(t)) {
      const Edge& edge = g_.edge(e);
      for (std::size_t j = 0; j < m_; ++j) {
        const ProcId pj{j};
        double best = kInf;
        for (const Replica& r : schedule_.replicas(edge.src)) {
          best = std::min(best, channel_arrival(r, edge, pj));
        }
        arrival[j] = std::max(arrival[j], best);
      }
    }
  }

  /// The ε+1 processors with the smallest F(t, Pj) (ties: processor
  /// index), or a uniformly random distinct set under random_placement.
  /// Fills and returns the reused chosen_scratch_ member (valid until the
  /// next call).
  const std::vector<ProcId>& choose_processors(
      const std::vector<double>& finish) {
    chosen_scratch_.clear();
    if (options_.random_placement) {
      for (std::size_t j : rng_.sample_without_replacement(m_, replica_count_)) {
        chosen_scratch_.emplace_back(j);
      }
      return chosen_scratch_;
    }
    order_scratch_.resize(m_);
    std::iota(order_scratch_.begin(), order_scratch_.end(), std::size_t{0});
    std::stable_sort(order_scratch_.begin(), order_scratch_.end(),
                     [&finish](std::size_t a, std::size_t b) {
                       return finish[a] < finish[b];
                     });
    for (std::size_t i = 0; i < replica_count_; ++i)
      chosen_scratch_.emplace_back(order_scratch_[i]);
    return chosen_scratch_;
  }

  void schedule_task(TaskId t) {
    std::vector<double>& arrival = arrival_scratch_;
    arrival_times(t, arrival);
    std::vector<double>& finish = finish_scratch_;
    finish.resize(m_);
    for (std::size_t j = 0; j < m_; ++j) {
      finish[j] = costs_.exec(t, ProcId{j}) +
                  std::max(arrival[j], ready_.ready(j));
    }
    const std::vector<ProcId>& chosen = choose_processors(finish);

    if (options_.deadlines != nullptr) {
      double worst = 0.0;
      for (ProcId p : chosen) worst = std::max(worst, finish[p.index()]);
      if (worst > (*options_.deadlines)[t.index()]) {
        throw Infeasible("task " + g_.label(t) +
                         " misses its deadline: finish " +
                         std::to_string(worst) + " > " +
                         std::to_string((*options_.deadlines)[t.index()]));
      }
    }

    if (options_.policy == ChannelPolicy::kAllPairs) {
      place_all_pairs(t, chosen, arrival, finish);
    } else {
      place_mc(t, chosen, arrival);
    }
  }

  // --- FTSA channel realization -------------------------------------------

  void place_all_pairs(TaskId t, const std::vector<ProcId>& chosen,
                       const std::vector<double>& arrival,
                       const std::vector<double>& finish) {
    std::vector<Replica> replicas;
    replicas.reserve(chosen.size());
    for (ProcId p : chosen) {
      const std::size_t j = p.index();
      Replica r;
      r.proc = p;
      r.start = std::max(arrival[j], ready_.ready(j));
      r.finish = finish[j];
      // eq. (3): every predecessor message may be the last to arrive; when a
      // predecessor replica shares the processor, the intra-processor
      // channel is the only one (paper's remark after Thm 4.1).
      double pess_arrival = 0.0;
      for (std::size_t e : g_.in_edges(t)) {
        const Edge& edge = g_.edge(e);
        const auto& src_reps = schedule_.replicas(edge.src);
        const Replica* local = local_replica(src_reps, p);
        double worst = 0.0;
        if (local != nullptr) {
          worst = local->pess_finish;
        } else {
          for (const Replica& sr : src_reps) {
            worst = std::max(worst, sr.pess_finish +
                                        edge.volume *
                                            platform_.delay(sr.proc, p));
          }
        }
        pess_arrival = std::max(pess_arrival, worst);
      }
      // The max() with r.start matters only with communication awareness,
      // where the (port-aware) optimistic arrival can exceed the
      // contention-free pessimistic one.
      r.pess_start = std::max({pess_arrival, ready_pess_.ready(j), r.start});
      r.pess_finish = r.pess_start + costs_.exec(t, p);
      replicas.push_back(r);
      // Kill set: own processor, plus the co-located source's kill set for
      // every intra-shortcut (single-channel) edge.  Multi-channel edges
      // cannot be starved by <= ε failures (their sources' kill sets are
      // pairwise disjoint), so they contribute nothing.
      KillSet kill(m_);
      kill.add(p);
      for (std::size_t e : g_.in_edges(t)) {
        const Edge& edge = g_.edge(e);
        const auto& src_reps = schedule_.replicas(edge.src);
        for (std::size_t sk = 0; sk < src_reps.size(); ++sk) {
          if (src_reps[sk].proc == p) {
            kill.merge(kills_[edge.src.index()][sk]);
            break;
          }
        }
      }
      kills_[t.index()].push_back(std::move(kill));
    }
    commit(t, chosen, std::move(replicas));
    // Channels: all source replicas feed every target replica, except that
    // a co-located source replica suppresses the remote copies.
    for (std::size_t e : g_.in_edges(t)) {
      const Edge& edge = g_.edge(e);
      const auto& src_reps = schedule_.replicas(edge.src);
      std::vector<Channel> channels;
      for (std::size_t dst_k = 0; dst_k < chosen.size(); ++dst_k) {
        const ProcId p = chosen[dst_k];
        bool local = false;
        for (std::size_t src_k = 0; src_k < src_reps.size(); ++src_k) {
          if (src_reps[src_k].proc == p) {
            channels.push_back(Channel{src_k, dst_k});
            local = true;
            break;
          }
        }
        if (local) continue;
        for (std::size_t src_k = 0; src_k < src_reps.size(); ++src_k) {
          channels.push_back(Channel{src_k, dst_k});
          book_send(src_reps[src_k], edge, p);
        }
      }
      schedule_.set_channels(e, std::move(channels));
    }
  }

  // --- MC-FTSA channel realization (§4.2) ----------------------------------

  /// Sentinel in a selection vector: the slot receives the full channel
  /// set for that edge (all ε+1 sources) instead of a single source.
  static constexpr std::size_t kFullFallback = static_cast<std::size_t>(-1);

  void place_mc(TaskId t, const std::vector<ProcId>& chosen,
                const std::vector<double>& /*all_pairs_arrival*/) {
    const auto in_edges = g_.in_edges(t);
    const std::size_t n = chosen.size();

    // Per-slot kill sets, accumulated edge by edge.  A task survives ε
    // failures iff these stay pairwise disjoint (then killing all ε+1
    // replicas requires ε+1 distinct processors).  The §4.2 per-edge
    // selection alone does not guarantee this across edges; when
    // options_.repair_vulnerable is set, select_channels() constrains the
    // assignment accordingly and falls back to the full channel set for
    // slots that cannot be served conflict-free.
    std::vector<KillSet> kills;
    kills.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      KillSet kill(m_);
      kill.add(chosen[k]);
      kills.push_back(std::move(kill));
    }

    std::vector<std::vector<std::size_t>> selected(in_edges.size());
    bool any_fallback = false;
    for (std::size_t ei = 0; ei < in_edges.size(); ++ei) {
      selected[ei] = select_channels(in_edges[ei], t, chosen, kills);
      for (std::size_t k = 0; k < n; ++k) {
        if (selected[ei][k] == kFullFallback) {
          any_fallback = true;
        } else {
          kills[k].merge(
              kills_[g_.edge(in_edges[ei]).src.index()][selected[ei][k]]);
        }
      }
    }
    if (any_fallback) repaired_.push_back(t);
    kills_[t.index()] = std::move(kills);

    // Replica times under the selected channel set.
    std::vector<Replica> replicas;
    replicas.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      const ProcId p = chosen[k];
      const std::size_t j = p.index();
      double arrival = 0.0;
      double pess_arrival = 0.0;
      for (std::size_t ei = 0; ei < in_edges.size(); ++ei) {
        const Edge& edge = g_.edge(in_edges[ei]);
        const auto& src_reps = schedule_.replicas(edge.src);
        if (selected[ei][k] == kFullFallback) {
          // Full set: first message wins; worst case, the last one does
          // (a co-located source may itself be starved under failures, so
          // it gets no special treatment in the pessimistic time).
          double best = std::numeric_limits<double>::infinity();
          double worst = 0.0;
          for (const Replica& sr : src_reps) {
            const double comm = edge.volume * platform_.delay(sr.proc, p);
            best = std::min(best, channel_arrival(sr, edge, p));
            worst = std::max(worst, sr.pess_finish + comm);
          }
          arrival = std::max(arrival, best);
          pess_arrival = std::max(pess_arrival, worst);
        } else {
          const Replica& src = src_reps[selected[ei][k]];
          const double comm = edge.volume * platform_.delay(src.proc, p);
          arrival = std::max(arrival, channel_arrival(src, edge, p));
          pess_arrival = std::max(pess_arrival, src.pess_finish + comm);
        }
      }
      Replica r;
      r.proc = p;
      r.start = std::max(arrival, ready_.ready(j));
      r.finish = r.start + costs_.exec(t, p);
      // max() with r.start: with communication awareness the port-aware
      // optimistic arrival can exceed the contention-free pessimistic one.
      r.pess_start = std::max({pess_arrival, ready_pess_.ready(j), r.start});
      r.pess_finish = r.pess_start + costs_.exec(t, p);
      replicas.push_back(r);
    }
    commit(t, chosen, std::move(replicas));

    for (std::size_t ei = 0; ei < in_edges.size(); ++ei) {
      const Edge& edge = g_.edge(in_edges[ei]);
      const auto& src_reps = schedule_.replicas(edge.src);
      std::vector<Channel> channels;
      for (std::size_t k = 0; k < n; ++k) {
        if (selected[ei][k] == kFullFallback) {
          for (std::size_t sk = 0; sk < src_reps.size(); ++sk) {
            channels.push_back(Channel{sk, k});
            book_send(src_reps[sk], edge, chosen[k]);
          }
        } else {
          channels.push_back(Channel{selected[ei][k], k});
          book_send(src_reps[selected[ei][k]], edge, chosen[k]);
        }
      }
      schedule_.set_channels(in_edges[ei], std::move(channels));
    }
  }

  /// Builds the §4.2 bipartite channel graph for one predecessor edge and
  /// returns, for each chosen-processor slot k, the source replica feeding
  /// it (or kFullFallback).  Guarantees the Prop.-4.3 structure:
  /// co-located replicas use the internal channel; the rest form a
  /// one-to-one mapping.
  ///
  /// When options_.repair_vulnerable is set, a candidate (source l → slot
  /// k) is only *compatible* if the source's kill set does not touch any
  /// other slot's accumulated kill set — this aligns shared ancestors onto
  /// a single slot and keeps the per-slot kill sets pairwise disjoint.
  /// Slots that cannot be served by a compatible source fall back to the
  /// full channel set (unstarvable by <= ε failures, no kill contribution).
  std::vector<std::size_t> select_channels(std::size_t edge_index, TaskId t,
                                           const std::vector<ProcId>& chosen,
                                           const std::vector<KillSet>& slot_kills) {
    const Edge& edge = g_.edge(edge_index);
    const auto& src_reps = schedule_.replicas(edge.src);
    const std::size_t n = chosen.size();  // == ε+1 == src_reps.size()

    // Union of all slot kill sets: a source conflicts with slot k iff its
    // kill set touches the union outside slot k's own part.
    KillSet& universe = universe_scratch_;
    universe.reset(m_);
    for (const KillSet& k : slot_kills) universe.merge(k);
    auto compatible = [&](std::size_t l, std::size_t k) {
      if (!options_.repair_vulnerable) return true;
      return !kills_[edge.src.index()][l].conflicts_outside(universe,
                                                            slot_kills[k]);
    };

    // Candidate channels with §4.2 weights (reused scratch).
    std::vector<ChannelCandidate>& candidates = candidate_scratch_;
    candidates.clear();
    candidates.reserve(n * n);
    for (std::size_t l = 0; l < n; ++l) {
      const Replica& src = src_reps[l];
      // Does the source processor host one of t's replicas?
      std::size_t internal_slot = n;
      for (std::size_t k = 0; k < n; ++k) {
        if (chosen[k] == src.proc) {
          internal_slot = k;
          break;
        }
      }
      auto weight_to = [&](std::size_t k) {
        const ProcId p = chosen[k];
        return std::max(channel_arrival(src, edge, p), ready_.ready(p.index())) +
               costs_.exec(t, p);
      };
      if (internal_slot < n) {
        if (compatible(l, internal_slot)) {
          candidates.push_back(ChannelCandidate{
              l, internal_slot, weight_to(internal_slot), true});
        }
        // An incompatible internal source cannot feed any other slot
        // either (its kill set contains its own processor, which is in
        // the internal slot's kill set); the slot will fall back.
      } else {
        for (std::size_t k = 0; k < n; ++k) {
          if (compatible(l, k)) {
            candidates.push_back(ChannelCandidate{l, k, weight_to(k), false});
          }
        }
      }
    }

    std::vector<std::size_t> chosen_src(n, kFullFallback);
    if (options_.policy == ChannelPolicy::kMcGreedy) {
      // Priority to internal channels, then non-decreasing weight.
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const ChannelCandidate& a, const ChannelCandidate& b) {
                         if (a.internal != b.internal) return a.internal;
                         return a.weight < b.weight;
                       });
      std::vector<char>& left_done = left_done_scratch_;
      left_done.assign(n, 0);
      for (const ChannelCandidate& c : candidates) {
        if (left_done[c.left] || chosen_src[c.right] != kFullFallback) continue;
        left_done[c.left] = 1;
        chosen_src[c.right] = c.left;
      }
    } else {
      // Binary search on the bottleneck weight T; feasibility via maximum
      // bipartite matching (Hopcroft–Karp).  With the compatibility
      // constraint a perfect matching may not exist; we then binary-search
      // the smallest T that achieves the maximum matching size and leave
      // the unmatched slots to the fallback.
      std::vector<double>& weights = weight_scratch_;
      weights.clear();
      weights.reserve(candidates.size());
      for (const ChannelCandidate& c : candidates) weights.push_back(c.weight);
      std::sort(weights.begin(), weights.end());
      weights.erase(std::unique(weights.begin(), weights.end()), weights.end());

      auto matching_at = [&](double threshold) {
        BipartiteGraph bg(n, n);
        for (const ChannelCandidate& c : candidates) {
          if (c.weight <= threshold) bg.add_edge(c.left, c.right);
        }
        return hopcroft_karp(bg);
      };
      if (!weights.empty()) {
        const std::size_t target = matching_at(weights.back()).size;
        std::size_t lo = 0;
        std::size_t hi = weights.size() - 1;
        while (lo < hi) {
          const std::size_t mid = (lo + hi) / 2;
          if (matching_at(weights[mid]).size >= target) {
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
        const Matching m = matching_at(weights[lo]);
        for (std::size_t l = 0; l < n; ++l) {
          if (m.pair_of_left[l] != Matching::kUnmatched) {
            chosen_src[m.pair_of_left[l]] = l;
          }
        }
      }
    }
    if (!options_.repair_vulnerable) {
      for (std::size_t k = 0; k < n; ++k) {
        FTSCHED_REQUIRE(chosen_src[k] != kFullFallback,
                        "MC channel selection left a replica without input");
      }
    }
    return chosen_src;
  }

  // --- shared ----------------------------------------------------------------

  static const Replica* local_replica(const std::vector<Replica>& reps,
                                      ProcId p) {
    for (const Replica& r : reps) {
      if (r.proc == p) return &r;
    }
    return nullptr;
  }

  void commit(TaskId t, const std::vector<ProcId>& chosen,
              std::vector<Replica> replicas) {
    for (std::size_t k = 0; k < chosen.size(); ++k) {
      ready_.commit(chosen[k].index(), replicas[k].finish);
      ready_pess_.commit(chosen[k].index(), replicas[k].pess_finish);
    }
    schedule_.place_task(t, std::move(replicas));
  }

  const CostModel& costs_;
  const TaskGraph& g_;
  const Platform& platform_;
  EngineOptions options_;
  std::size_t m_;
  std::size_t replica_count_;
  ReplicatedSchedule schedule_;
  Rng rng_;
  AvlTree<AlphaKey> alpha_;
  std::vector<std::size_t> pending_;
  // Factored into core/placement.hpp so the online rescheduling policies
  // share the same incremental availability state (see reschedule.cpp).
  ProcReadyState ready_;
  ProcReadyState ready_pess_;
  std::vector<std::vector<KillSet>> kills_;  // per task, per replica
  std::vector<TaskId> repaired_;
  // Scratch reused across schedule_task calls (cleared, never shrunk):
  // per-task vectors in the O(v) loop otherwise allocate v times per run.
  std::vector<double> arrival_scratch_;
  std::vector<double> finish_scratch_;
  std::vector<std::size_t> order_scratch_;
  std::vector<ProcId> chosen_scratch_;
  std::vector<ChannelCandidate> candidate_scratch_;
  std::vector<double> weight_scratch_;
  std::vector<char> left_done_scratch_;
  KillSet universe_scratch_;
  /// Per processor, per port lane: booked send intervals sorted by start
  /// (empty when the engine is communication-unaware; see
  /// core/comm_awareness.hpp).
  std::vector<std::vector<std::vector<SendSlot>>> send_lanes_;
};

}  // namespace

ReplicatedSchedule run_list_engine(const CostModel& costs,
                                   const EngineOptions& options) {
  Engine engine(costs, options);
  return engine.run();
}

}  // namespace ftsched::detail
