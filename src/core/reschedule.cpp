#include "ftsched/core/reschedule.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "ftsched/core/placement.hpp"
#include "ftsched/core/priorities.hpp"
#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {

/// Priority-ordered pending replicas: descending bottom level, ties toward
/// the lower task id then replica index (deterministic across platforms).
struct PendingReplica {
  TaskId task;
  std::size_t replica = 0;
  double priority = 0.0;
};

void sort_by_priority(std::vector<PendingReplica>& pending) {
  std::sort(pending.begin(), pending.end(),
            [](const PendingReplica& a, const PendingReplica& b) {
              if (a.priority != b.priority) return a.priority > b.priority;
              if (a.task != b.task) return a.task < b.task;
              return a.replica < b.replica;
            });
}

/// Shared greedy placement pass: for each pending replica (already in
/// priority order) pick the live processor with the earliest finish,
/// keeping a task's replicas on distinct processors when possible, and
/// emit a move when the choice differs from the replica's current host.
/// `avail` carries the survivors' backlogs and is advanced per placement so
/// later replicas see earlier ones — the incremental state policies reuse
/// instead of rebuilding per event.
class GreedyPass {
 public:
  GreedyPass(const OnlineView& view, const CostModel& costs, double now)
      : view_(view), costs_(costs), now_(now), avail_(view.proc_count()) {
    for (std::size_t p = 0; p < view.proc_count(); ++p) {
      if (!view.alive(p)) continue;
      avail_.raise(p, view.backlog(p));
      avail_.raise(p, now);
    }
  }

  void place(const PendingReplica& r, std::vector<ReplicaMove>& moves) {
    const TaskId t = r.task;
    const std::size_t current = view_.proc_of(t, r.replica);
    const auto exec = [&](std::size_t p) {
      return costs_.exec(t, ProcId{p});
    };
    const auto earliest = [&](std::size_t) { return now_; };
    // Strict pass: live targets not already hosting a replica of t (the
    // replica's own current host stays eligible — "stay put" is a choice).
    auto strict = [&](std::size_t p) {
      if (!view_.alive(p) || taken(t, p)) return false;
      return p == current || !view_.hosts_live_replica(t, p);
    };
    double finish = 0.0;
    std::size_t chosen = avail_.best_finish(strict, earliest, exec, &finish);
    if (chosen == avail_.size()) {
      // Every live processor already hosts a replica of t: fall back to any
      // live target so the replica survives at all (replica disjointness is
      // a best effort once the platform has shrunk past it).
      auto relaxed = [&](std::size_t p) { return view_.alive(p); };
      chosen = avail_.best_finish(relaxed, earliest, exec, &finish);
    }
    if (chosen == avail_.size()) return;  // no live processor: nothing to do
    avail_.commit(chosen, finish);
    taken_.emplace_back(t, chosen);
    if (chosen == current) return;  // staying put is not a move
    moves.push_back(ReplicaMove{t, r.replica, ProcId{chosen}, exec(chosen)});
  }

 private:
  [[nodiscard]] bool taken(TaskId t, std::size_t p) const {
    for (const auto& [tt, pp] : taken_) {
      if (tt == t && pp == p) return true;
    }
    return false;
  }

  const OnlineView& view_;
  const CostModel& costs_;
  double now_;
  ProcReadyState avail_;
  std::vector<std::pair<TaskId, std::size_t>> taken_;
};

class NonePolicy final : public ReschedulePolicy {
 public:
  [[nodiscard]] std::string spec() const override { return "none"; }
  void on_event(const OnlineView&, const OnlineEvent&,
                std::vector<ReplicaMove>&) override {}
  [[nodiscard]] bool is_noop() const override { return true; }
};

/// Base for the greedy policies: binds the schedule and memoises bottom
/// levels once per prepare (the priorities.hpp per-thread memo makes the
/// repeated calls across runs cheap).
class GreedyPolicyBase : public ReschedulePolicy {
 public:
  void prepare(const ReplicatedSchedule& schedule) override {
    schedule_ = &schedule;
    bottom_levels_ = bottom_levels(schedule.costs());
  }

 protected:
  [[nodiscard]] const ReplicatedSchedule& schedule() const {
    FTSCHED_REQUIRE(schedule_ != nullptr,
                    "policy used before prepare(schedule)");
    return *schedule_;
  }
  [[nodiscard]] double priority_of(TaskId t) const {
    return bottom_levels_[t.index()];
  }

 private:
  const ReplicatedSchedule* schedule_ = nullptr;
  std::vector<double> bottom_levels_;
};

/// `requeue-heft`: on each crash, remap the crashed processor's stranded
/// pending replicas onto survivors, highest bottom level first, each to the
/// earliest-finish live processor (HEFT's greedy rule on the survivor
/// platform).  Repairs are left to the simulator (the processor simply
/// resumes its remaining queue).
class RequeueHeftPolicy final : public GreedyPolicyBase {
 public:
  [[nodiscard]] std::string spec() const override { return "requeue-heft"; }

  void on_event(const OnlineView& view, const OnlineEvent& event,
                std::vector<ReplicaMove>& moves) override {
    if (event.kind != OnlineEvent::Kind::kCrash) return;
    scratch_.clear();
    pairs_.clear();
    view.pending_on(event.proc, pairs_);
    for (const auto& [t, r] : pairs_) {
      scratch_.push_back(PendingReplica{t, r, priority_of(t)});
    }
    if (scratch_.empty()) return;
    sort_by_priority(scratch_);
    GreedyPass pass(view, schedule().costs(), event.time);
    for (const PendingReplica& r : scratch_) pass.place(r, moves);
  }

 private:
  std::vector<PendingReplica> scratch_;
  std::vector<std::pair<TaskId, std::size_t>> pairs_;
};

/// `reactive-ftsa`: on each crash *and* repair, re-run the list engine's
/// greedy earliest-finish placement over *all* pending replicas on the
/// current survivor platform (the engine's choose-processors rule, fed by
/// the same memoised bottom levels), moving every replica whose best
/// processor changed.
class ReactiveFtsaPolicy final : public GreedyPolicyBase {
 public:
  [[nodiscard]] std::string spec() const override { return "reactive-ftsa"; }

  void on_event(const OnlineView& view, const OnlineEvent& event,
                std::vector<ReplicaMove>& moves) override {
    scratch_.clear();
    for (std::size_t p = 0; p < view.proc_count(); ++p) {
      pairs_.clear();
      view.pending_on(p, pairs_);
      for (const auto& [t, r] : pairs_) {
        scratch_.push_back(PendingReplica{t, r, priority_of(t)});
      }
    }
    if (scratch_.empty()) return;
    sort_by_priority(scratch_);
    GreedyPass pass(view, schedule().costs(), event.time);
    for (const PendingReplica& r : scratch_) pass.place(r, moves);
  }

 private:
  std::vector<PendingReplica> scratch_;
  std::vector<std::pair<TaskId, std::size_t>> pairs_;
};

}  // namespace

PolicyRegistry::PolicyRegistry() : SpecRegistry("rescheduling policy") {
  add(Entry{"none",
            "keep the static schedule: crashed processors never return and "
            "their unstarted replicas are lost (the paper's replay setup)",
            {},
            [](const SpecOptions&) -> ReschedulePolicyPtr {
              return std::make_unique<NonePolicy>();
            }});
  add(Entry{"requeue-heft",
            "on each crash, greedily remap the crashed processor's pending "
            "replicas onto the earliest-finish survivors (HEFT order)",
            {},
            [](const SpecOptions&) -> ReschedulePolicyPtr {
              return std::make_unique<RequeueHeftPolicy>();
            }});
  add(Entry{"reactive-ftsa",
            "on each crash and repair, re-run the list engine's greedy "
            "placement over all pending replicas on the survivor platform",
            {},
            [](const SpecOptions&) -> ReschedulePolicyPtr {
              return std::make_unique<ReactiveFtsaPolicy>();
            }});
}

const PolicyRegistry& PolicyRegistry::global() {
  static const PolicyRegistry registry;
  return registry;
}

ReschedulePolicyPtr make_reschedule_policy(const std::string& spec) {
  return PolicyRegistry::global().create(spec);
}

}  // namespace ftsched
