#include "ftsched/service/protocol.hpp"

#include "ftsched/util/error.hpp"
#include "ftsched/util/spec.hpp"

namespace ftsched {

namespace {

std::string quoted(const char* key, const std::string& value) {
  return std::string("\"") + key + "\":\"" + json_escape(value) + "\"";
}

}  // namespace

ServiceMessage parse_service_message(const std::string& payload,
                                     const std::string& from) {
  ServiceMessage msg;
  msg.where = from;
  std::size_t eol = payload.find('\n');
  const std::string head_line =
      eol == std::string::npos ? payload : payload.substr(0, eol);
  msg.head.parse(head_line, from);
  msg.type = msg.head.field("type", from);
  while (eol != std::string::npos) {
    const std::size_t begin = eol + 1;
    eol = payload.find('\n', begin);
    std::string line = eol == std::string::npos
                           ? payload.substr(begin)
                           : payload.substr(begin, eol - begin);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) msg.record_lines.push_back(std::move(line));
  }
  return msg;
}

std::string msg_hello(const std::string& worker) {
  return std::string("{\"ftsched_coord\":\"") + kCoordProtocolVersion +
         "\",\"type\":\"hello\"," + quoted("worker", worker) + "}";
}

std::string msg_plan(const std::vector<std::string>& sweep_args,
                     const std::string& shard, const std::string& fingerprint,
                     bool group) {
  std::string out = "{\"type\":\"plan\",";
  out += quoted("args", join_plan_args(sweep_args)) + ",";
  out += quoted("shard", shard) + ",";
  out += quoted("fingerprint", fingerprint) + ",";
  out += quoted("group", group ? "1" : "0") + "}";
  return out;
}

std::string msg_ready(const std::string& fingerprint) {
  return "{\"type\":\"ready\"," + quoted("fingerprint", fingerprint) + "}";
}

std::string msg_lease_request() { return "{\"type\":\"lease_request\"}"; }

std::string msg_lease(std::uint64_t lease, const std::vector<std::size_t>& ks) {
  return "{\"type\":\"lease\",\"lease\":\"" + std::to_string(lease) + "\"," +
         quoted("ks", render_index_list(ks)) + "}";
}

std::string msg_sample_head(std::uint64_t lease, std::size_t k) {
  return "{\"type\":\"sample\",\"lease\":\"" + std::to_string(lease) +
         "\",\"k\":\"" + std::to_string(k) + "\"}";
}

std::string msg_done(std::uint64_t lease) {
  return "{\"type\":\"done\",\"lease\":\"" + std::to_string(lease) + "\"}";
}

std::string msg_heartbeat() { return "{\"type\":\"heartbeat\"}"; }

std::string msg_reject(const std::string& cause) {
  return "{\"type\":\"reject\"," + quoted("cause", cause) + "}";
}

std::string msg_bye() { return "{\"type\":\"bye\"}"; }

std::string join_plan_args(const std::vector<std::string>& args) {
  std::string out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    FTSCHED_REQUIRE(args[i].find('\n') == std::string::npos,
                    "plan argument contains a newline: " + args[i]);
    if (i) out += '\n';
    out += args[i];
  }
  return out;
}

std::vector<std::string> split_plan_args(const std::string& joined) {
  std::vector<std::string> out;
  if (joined.empty()) return out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t eol = joined.find('\n', begin);
    if (eol == std::string::npos) {
      out.push_back(joined.substr(begin));
      return out;
    }
    out.push_back(joined.substr(begin, eol - begin));
    begin = eol + 1;
  }
}

std::string render_index_list(const std::vector<std::size_t>& ks) {
  std::string out;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    if (i) out += ';';
    out += std::to_string(ks[i]);
  }
  return out;
}

std::vector<std::size_t> parse_index_list(const std::string& joined,
                                          const std::string& where) {
  std::vector<std::size_t> out;
  if (joined.empty()) return out;
  std::size_t begin = 0;
  while (begin <= joined.size()) {
    std::size_t end = joined.find(';', begin);
    if (end == std::string::npos) end = joined.size();
    FTSCHED_REQUIRE(end > begin, where + ": empty index in lease list");
    out.push_back(static_cast<std::size_t>(
        spec_detail::parse_u64("lease index", joined.substr(begin, end - begin))));
    begin = end + 1;
  }
  return out;
}

}  // namespace ftsched
