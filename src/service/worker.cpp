#include "ftsched/service/worker.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <map>
#include <thread>
#include <vector>

#include "ftsched/experiments/backend.hpp"
#include "ftsched/experiments/sweep_io.hpp"
#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/service/protocol.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/net.hpp"
#include "ftsched/util/spec.hpp"

namespace ftsched {

namespace {

/// Blocking receive that keeps the connection alive: every `heartbeat_ms`
/// of silence sends a heartbeat so a parked worker never trips the
/// coordinator's lease timeout.  Returns false when the coordinator went
/// away (clean EOF).
bool recv_with_heartbeat(Socket& sock, std::string& payload,
                         int heartbeat_ms) {
  while (!sock.recv_message(payload, heartbeat_ms)) {
    if (sock.eof()) return false;
    sock.send_message(msg_heartbeat());
  }
  return true;
}

}  // namespace

WorkerReport run_worker(const WorkerOptions& options) {
  WorkerReport report;
  Socket sock = connect_to(options.host, options.port);
  sock.send_message(msg_hello(options.name));

  const std::string where = "coordinator reply to " + options.name;
  std::string payload;
  FTSCHED_REQUIRE(sock.recv_message(payload),
                  where + ": connection closed before the plan arrived");
  ServiceMessage msg = parse_service_message(payload, where);
  if (msg.type == "reject") {
    throw Error("coordinator rejected worker '" + options.name +
                "': " + msg.field("cause"));
  }
  FTSCHED_REQUIRE(msg.type == "plan",
                  where + ": expected plan, got '" + msg.type + "'");

  // Rebuild the plan exactly like the sweep command would from these
  // flags; the ready answer carries *our* fingerprint so a drifted binary
  // is rejected before it can lease anything.
  const FigureConfig config =
      sweep_config_from_args(split_plan_args(msg.field("args")));
  const SweepPlan plan =
      apply_shard_chain(SweepPlan(config), msg.field("shard"));
  const bool group = msg.field_or("group", "1") != "0";
  sock.send_message(msg_ready(plan.fingerprint()));

  // Selected index -> schedule-reuse group, so a lease's coordinates can
  // be bucketed into evaluate_group calls (any ascending subset of one
  // group is valid and bit-identical to per-coordinate evaluation).
  std::vector<std::size_t> group_of(plan.size(), 0);
  if (group) {
    const std::vector<std::vector<std::size_t>> groups =
        plan.group_selection();
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      for (const std::size_t k : groups[gi]) group_of[k] = gi;
    }
  }

  // Keep leases alive *while computing*, not just while parked: the
  // coordinator refreshes a worker's leases on any inbound message, but a
  // worker deep in evaluate_group (or throttled by --delay-ms) used to go
  // silent for the whole stretch and trip the lease timeout, so its work
  // was stolen and recomputed even though the worker was healthy.
  const auto heartbeat = [&] { sock.send_message(msg_heartbeat()); };

  const auto throttle = [&] {
    if (options.sample_delay_ms == 0) return;
    // Sleep in heartbeat-period slices with a heartbeat between them, so a
    // straggler delay larger than the coordinator's lease timeout still
    // reads as alive.
    const std::size_t slice =
        static_cast<std::size_t>(std::max(options.heartbeat_ms, 1));
    std::size_t remaining = options.sample_delay_ms;
    while (remaining > 0) {
      const std::size_t step = std::min(remaining, slice);
      std::this_thread::sleep_for(std::chrono::milliseconds(step));
      remaining -= step;
      if (remaining > 0) heartbeat();
    }
  };

  const auto send_sample = [&](std::uint64_t lease, std::size_t k,
                               const SeriesSample& sample) {
    throttle();
    std::string frame = msg_sample_head(lease, k);
    frame += '\n';
    append_sample_records(frame, plan, plan.coord(k), sample);
    sock.send_message(frame);
    ++report.samples_sent;
  };

  std::size_t leases_received = 0;
  std::string buf;
  while (true) {
    sock.send_message(msg_lease_request());
    if (!recv_with_heartbeat(sock, buf, options.heartbeat_ms)) return report;
    msg = parse_service_message(buf, where);
    if (msg.type == "bye") {
      report.orderly = true;
      return report;
    }
    if (msg.type == "reject") {
      throw Error("coordinator rejected worker '" + options.name +
                  "': " + msg.field("cause"));
    }
    FTSCHED_REQUIRE(msg.type == "lease",
                    where + ": expected lease/bye, got '" + msg.type + "'");

    const std::uint64_t lease =
        spec_detail::parse_u64("lease", msg.field("lease"));
    std::vector<std::size_t> ks = parse_index_list(msg.field("ks"), where);
    std::sort(ks.begin(), ks.end());
    ++leases_received;
    if (options.kill_after_leases != 0 &&
        leases_received >= options.kill_after_leases) {
      std::raise(SIGKILL);
    }

    if (group) {
      // Bucket the lease by schedule-reuse group; buckets keep ascending
      // member order, so each one is a valid evaluate_group subset.
      std::map<std::size_t, std::vector<std::size_t>> buckets;
      for (const std::size_t k : ks) buckets[group_of[k]].push_back(k);
      for (const auto& [gi, members] : buckets) {
        (void)gi;
        const std::vector<SeriesSample> samples = plan.evaluate_group(members);
        // One heartbeat per completed group bounds the silent stretch to a
        // single evaluate_group call even when samples are throttled.
        heartbeat();
        for (std::size_t i = 0; i < members.size(); ++i) {
          send_sample(lease, members[i], samples[i]);
        }
      }
    } else {
      for (const std::size_t k : ks) {
        const SeriesSample sample = plan.evaluate(plan.coord(k));
        heartbeat();
        send_sample(lease, k, sample);
      }
    }
    sock.send_message(msg_done(lease));
    ++report.leases_completed;
    if (options.max_leases != 0 &&
        report.leases_completed >= options.max_leases) {
      return report;  // abrupt: no goodbye, the coordinator requeues
    }
  }
}

}  // namespace ftsched
