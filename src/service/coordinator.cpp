#include "ftsched/service/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <poll.h>

#include "ftsched/experiments/backend.hpp"
#include "ftsched/experiments/sweep_io.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/log.hpp"
#include "ftsched/util/spec.hpp"

namespace ftsched {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Atomic small-file write: tmp + rename, so a killed coordinator never
/// leaves a torn unit for the next resume to trip over.
void write_file_atomic(const std::filesystem::path& path,
                       const std::string& text) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    FTSCHED_REQUIRE(out.good(), "cannot create manifest file: " + tmp.string());
    out << text;
    out.flush();
    FTSCHED_REQUIRE(out.good(), "cannot write manifest file: " + tmp.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  FTSCHED_REQUIRE(!ec, "cannot finalise manifest file " + path.string() +
                           ": " + ec.message());
}

}  // namespace

std::string manifest_subdir(const std::string& manifest_dir,
                            const SweepPlan& plan) {
  // Two shards of one grid share the fingerprint but select different
  // coordinates, so the shard chain is part of the key.
  const std::string key = plan.fingerprint() + "|" + plan.shard_label();
  return (std::filesystem::path(manifest_dir) / hex64(fnv1a64(key))).string();
}

struct Coordinator::Impl {
  struct Connection {
    std::uint64_t id = 0;
    Socket sock;
    FrameDecoder dec;
    std::string name;  ///< from hello; "<unnamed>" until then
    enum class State { AwaitHello, PlanSent, Ready, Waiting, Rejected };
    State state = State::AwaitHello;
  };

  struct Lease {
    std::uint64_t conn = 0;       ///< owning connection id
    std::vector<std::size_t> ks;  ///< selected indices (shrinks on steal)
    Clock::time_point last_activity;
  };

  const SweepPlan& plan;
  SweepSink& sink;
  CoordinatorOptions opts;

  std::size_t n = 0;
  std::size_t lease_size = 1;
  std::vector<std::uint64_t> ids;  ///< full-grid id of each selected index
  std::string fingerprint;
  std::vector<std::string> sweep_args;

  Listener listener;

  std::map<std::uint64_t, Connection> conns;
  std::uint64_t next_conn = 1;
  std::map<std::uint64_t, Lease> leases;
  std::uint64_t next_lease = 1;
  std::vector<std::uint64_t> waiting;  ///< parked lease requests, in order

  std::vector<char> complete;
  std::vector<SeriesSample> samples;
  std::size_t completed_count = 0;
  std::deque<std::size_t> pending;
  std::size_t next_deliver = 0;

  // Fixed journaling partition: unit u covers selected indices
  // [u*lease_size, min(n, (u+1)*lease_size)).
  std::string manifest;  ///< resolved subdir; empty = journaling off
  std::vector<std::size_t> unit_left;
  std::vector<char> unit_written;

  CoordinatorStats counters;
  std::string last_cause;

  // Per-poll scratch (capacity reused across frames).
  std::string payload_scratch;
  FlatJsonObject record_scratch;

  Impl(const SweepPlan& p, SweepSink& s, CoordinatorOptions o)
      : plan(p), sink(s), opts(std::move(o)), listener(opts.port) {
    n = plan.size();
    lease_size = opts.lease != 0
                     ? opts.lease
                     : std::clamp<std::size_t>(n / 32, 1, 64);
    ids.reserve(n);
    for (std::size_t k = 0; k < n; ++k) ids.push_back(plan.coord(k).id);
    fingerprint = plan.fingerprint();
    sweep_args = sweep_cli_args(plan.config());

    complete.assign(n, 0);
    samples.assign(n, SeriesSample{});
    const std::size_t units = n == 0 ? 0 : (n - 1) / lease_size + 1;
    unit_left.assign(units, 0);
    for (std::size_t u = 0; u < units; ++u) {
      unit_left[u] = std::min(n, (u + 1) * lease_size) - u * lease_size;
    }
    unit_written.assign(units, 0);

    if (!opts.manifest_dir.empty()) {
      manifest = manifest_subdir(opts.manifest_dir, plan);
      load_manifest();
    }
    for (std::size_t k = 0; k < n; ++k) {
      if (!complete[k]) pending.push_back(k);
    }
    deliver_and_journal();
  }

  // ------------------------------------------------------------- manifest

  void load_manifest() {
    std::filesystem::create_directories(manifest);
    const std::filesystem::path marker =
        std::filesystem::path(manifest) / "fingerprint.txt";
    const std::string want = fingerprint + "\n" + plan.shard_label() + "\n";
    if (std::filesystem::exists(marker)) {
      std::ifstream in(marker, std::ios::binary);
      std::string got((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
      FTSCHED_REQUIRE(got == want,
                      "manifest dir " + manifest +
                          " belongs to a different plan (hash collision or "
                          "tampering) — refusing to resume from it");
    } else {
      write_file_atomic(marker, want);
    }

    for (const auto& entry : std::filesystem::directory_iterator(manifest)) {
      const std::filesystem::path& path = entry.path();
      if (path.extension() != ".jsonl") continue;  // skips .tmp leftovers
      load_manifest_unit(path.string());
    }
    // Units fully restored from disk are already journaled (their records
    // live in the loaded files, whatever partition wrote them).
    for (std::size_t u = 0; u < unit_left.size(); ++u) {
      if (unit_left[u] == 0) unit_written[u] = 1;
    }
  }

  void load_manifest_unit(const std::string& path) {
    // Resume is best-effort: a file that fails any check is skipped with a
    // warning (its coordinates simply re-run), never fatal — a corrupt
    // cache must not take down the sweep it exists to accelerate.
    ShardFile file;
    try {
      file = read_shard_file(path);
    } catch (const Error& e) {
      FTSCHED_WARN("coordinator: skipping manifest file " << path << ": "
                                                          << e.what());
      return;
    }
    if (file.header.fingerprint() != fingerprint) {
      FTSCHED_WARN("coordinator: skipping manifest file "
                   << path << ": plan mismatch");
      return;
    }
    std::map<std::uint64_t, SeriesSample> per_id;
    for (const ShardRecord& r : file.records) {
      const auto it = std::lower_bound(ids.begin(), ids.end(), r.coord.id);
      if (it == ids.end() || *it != r.coord.id || r.stats.count() != 1) {
        FTSCHED_WARN("coordinator: skipping manifest file " << path
                                                            << ": bad record");
        return;
      }
      const std::size_t k = static_cast<std::size_t>(it - ids.begin());
      std::string series = r.series;
      if (!undecorate_series(plan, plan.coord(k), series) ||
          !per_id[r.coord.id].emplace(std::move(series), r.stats.mean())
               .second) {
        FTSCHED_WARN("coordinator: skipping manifest file " << path
                                                            << ": bad record");
        return;
      }
    }
    for (auto& [id, sample] : per_id) {
      const auto it = std::lower_bound(ids.begin(), ids.end(), id);
      const std::size_t k = static_cast<std::size_t>(it - ids.begin());
      if (complete[k]) continue;  // first file wins; values are identical
      mark_complete(k, std::move(sample));
      ++counters.coords_resumed;
    }
  }

  void write_unit(std::size_t u) {
    const std::size_t begin = u * lease_size;
    const std::size_t end = std::min(n, begin + lease_size);
    std::string text = render_shard_header(plan);
    for (std::size_t k = begin; k < end; ++k) {
      append_sample_records(text, plan, plan.coord(k), samples[k]);
    }
    const std::string name =
        "unit_" + std::to_string(begin) + "_" + std::to_string(end) + ".jsonl";
    write_file_atomic(std::filesystem::path(manifest) / name, text);
    unit_written[u] = 1;
    ++counters.manifest_units_written;
    for (std::size_t k = begin; k < end; ++k) maybe_release(k);
  }

  // ------------------------------------------------------- sample storage

  void mark_complete(std::size_t k, SeriesSample sample) {
    complete[k] = 1;
    samples[k] = std::move(sample);
    ++completed_count;
    const std::size_t u = k / lease_size;
    if (--unit_left[u] == 0 && !manifest.empty() && !unit_written[u]) {
      write_unit(u);
    }
  }

  /// Frees a sample's memory once nothing can still need it: it has been
  /// delivered to the sink AND journaled (or journaling is off).
  void maybe_release(std::size_t k) {
    if (k >= next_deliver) return;
    if (!manifest.empty() && !unit_written[k / lease_size]) return;
    samples[k] = SeriesSample{};
  }

  void deliver_and_journal() {
    while (next_deliver < n && complete[next_deliver]) {
      const std::size_t k = next_deliver;
      sink.on_sample(plan.coord(k), samples[k]);
      ++next_deliver;
      maybe_release(k);
    }
  }

  // ------------------------------------------------------------ protocol

  [[nodiscard]] std::string describe(const Connection& c) const {
    return (c.name.empty() ? "<unnamed>" : c.name) + " (conn " +
           std::to_string(c.id) + ")";
  }

  void send(Connection& c, const std::string& payload) {
    // A send failure means the peer died mid-conversation; the reader side
    // will see the EOF next poll and requeue — no need to duplicate the
    // teardown here.
    try {
      c.sock.send_message(payload);
    } catch (const Error&) {
    }
  }

  void reject(Connection& c, const std::string& cause) {
    send(c, msg_reject(cause));
    c.state = Connection::State::Rejected;
    ++counters.workers_rejected;
    last_cause = describe(c) + ": rejected: " + cause;
  }

  void handle_message(Connection& c, const std::string& payload) {
    const ServiceMessage msg = parse_service_message(payload, describe(c));
    if (msg.type == "hello") {
      if (c.state != Connection::State::AwaitHello) {
        reject(c, "unexpected hello");
        return;
      }
      if (msg.field_or("ftsched_coord", "") != kCoordProtocolVersion) {
        reject(c, "coordinator protocol version mismatch");
        return;
      }
      c.name = msg.field_or("worker", "");
      send(c, msg_plan(sweep_args, plan.shard_label(), fingerprint,
                       opts.group));
      c.state = Connection::State::PlanSent;
      ++counters.workers_joined;
      return;
    }
    if (msg.type == "heartbeat") {
      touch_leases_of(c.id);
      return;
    }
    if (msg.type == "ready") {
      if (c.state != Connection::State::PlanSent) {
        reject(c, "unexpected ready");
        return;
      }
      if (msg.field("fingerprint") != fingerprint) {
        reject(c, "grid fingerprint mismatch — the worker rebuilt a "
                  "different grid from the plan flags\n  want: " +
                      fingerprint + "\n  got:  " + msg.field("fingerprint"));
        return;
      }
      c.state = Connection::State::Ready;
      return;
    }
    if (msg.type == "lease_request") {
      if (c.state != Connection::State::Ready) {
        reject(c, "lease_request before a valid ready handshake");
        return;
      }
      c.state = Connection::State::Waiting;
      waiting.push_back(c.id);
      return;
    }
    if (msg.type == "sample") {
      handle_sample(c, msg);
      return;
    }
    if (msg.type == "done") {
      const std::uint64_t lease_id =
          spec_detail::parse_u64("lease", msg.field("lease"));
      const auto it = leases.find(lease_id);
      if (it == leases.end() || it->second.conn != c.id) return;  // stale
      // A correct worker sent every sample first, so nothing should be
      // left; anything that is (a rejected record, say) goes back to the
      // queue rather than being silently lost.
      requeue_incomplete(it->second);
      leases.erase(it);
      return;
    }
    reject(c, "unknown message type '" + msg.type + "'");
  }

  void handle_sample(Connection& c, const ServiceMessage& msg) {
    const std::uint64_t lease_id =
        spec_detail::parse_u64("lease", msg.field("lease"));
    const std::uint64_t k64 = spec_detail::parse_u64("k", msg.field("k"));
    if (k64 >= n) {
      reject(c, "sample index " + std::to_string(k64) +
                    " outside the plan selection");
      return;
    }
    const std::size_t k = static_cast<std::size_t>(k64);
    const InstanceCoord coord = plan.coord(k);
    SeriesSample sample;
    for (const std::string& line : msg.record_lines) {
      record_scratch.parse(line, msg.where);
      ShardRecord r = shard_record_from(record_scratch, msg.where);
      if (r.coord.id != coord.id || r.stats.count() != 1 ||
          !undecorate_series(plan, coord, r.series) ||
          !sample.emplace(std::move(r.series), r.stats.mean()).second) {
        reject(c, "malformed sample record for selected index " +
                      std::to_string(k));
        return;
      }
    }
    const auto it = leases.find(lease_id);
    if (it != leases.end() && it->second.conn == c.id) {
      it->second.last_activity = Clock::now();
    }
    if (complete[k]) {
      // A steal victim or an expired-but-alive worker finishing anyway:
      // every correct worker computes bit-identical values, so first
      // arrival wins and the copy is dropped.
      ++counters.duplicate_samples;
      return;
    }
    mark_complete(k, std::move(sample));
  }

  void touch_leases_of(std::uint64_t conn_id) {
    const auto now = Clock::now();
    for (auto& [id, lease] : leases) {
      if (lease.conn == conn_id) lease.last_activity = now;
    }
  }

  // -------------------------------------------------- lease housekeeping

  void requeue_incomplete(const Lease& lease) {
    bool any = false;
    for (const std::size_t k : lease.ks) {
      if (!complete[k]) {
        pending.push_back(k);
        any = true;
      }
    }
    if (any) ++counters.leases_requeued;
  }

  void expire_leases() {
    const auto now = Clock::now();
    const std::chrono::duration<double> limit(opts.timeout);
    for (auto it = leases.begin(); it != leases.end();) {
      if (now - it->second.last_activity > limit) {
        // The owner may well be alive and merely slow; its results are
        // still welcome (dedupe handles the overlap), but the sweep stops
        // waiting on it.
        requeue_incomplete(it->second);
        ++counters.leases_expired;
        it = leases.erase(it);
      } else {
        ++it;
      }
    }
  }

  void drop_conn(std::uint64_t id, const std::string& cause) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    for (auto lit = leases.begin(); lit != leases.end();) {
      if (lit->second.conn == id) {
        requeue_incomplete(lit->second);
        lit = leases.erase(lit);
      } else {
        ++lit;
      }
    }
    // A worker hanging up after the sweep completed is the normal wind-down
    // (bye → close), not a reportable cause.
    if (completed_count < n) {
      last_cause = describe(it->second) + ": " + cause;
    }
    conns.erase(it);
  }

  [[nodiscard]] std::vector<std::size_t> take_pending() {
    std::vector<std::size_t> ks;
    while (ks.size() < lease_size && !pending.empty()) {
      const std::size_t k = pending.front();
      pending.pop_front();
      // A queued coordinate can complete in the meantime (duplicate result
      // from an expired-but-alive worker); leasing it again would be waste.
      if (!complete[k]) ks.push_back(k);
    }
    return ks;
  }

  /// Splits the most-laden active lease, taking the back half of its
  /// unfinished coordinates for an idle worker.  Returns empty when no
  /// lease has at least two unfinished coordinates to share.
  [[nodiscard]] std::vector<std::size_t> steal_for(std::uint64_t thief_conn) {
    Lease* victim = nullptr;
    std::size_t victim_left = 1;  // require >= 2 to split
    for (auto& [id, lease] : leases) {
      if (lease.conn == thief_conn) continue;
      std::size_t left = 0;
      for (const std::size_t k : lease.ks) left += !complete[k];
      if (left > victim_left) {
        victim = &lease;
        victim_left = left;
      }
    }
    if (victim == nullptr) return {};
    std::vector<std::size_t> incomplete;
    incomplete.reserve(victim_left);
    for (const std::size_t k : victim->ks) {
      if (!complete[k]) incomplete.push_back(k);
    }
    const std::size_t moved = incomplete.size() / 2;
    std::vector<std::size_t> stolen(incomplete.end() - moved,
                                    incomplete.end());
    // The victim keeps everything not stolen, so its lease completes
    // without the moved coordinates (its late results for them would be
    // dedupe'd duplicates).
    std::vector<std::size_t> kept;
    kept.reserve(victim->ks.size() - moved);
    for (const std::size_t k : victim->ks) {
      if (std::find(stolen.begin(), stolen.end(), k) == stolen.end()) {
        kept.push_back(k);
      }
    }
    victim->ks = std::move(kept);
    ++counters.leases_stolen;
    return stolen;
  }

  void grant(Connection& c, std::vector<std::size_t> ks) {
    const std::uint64_t lease_id = next_lease++;
    send(c, msg_lease(lease_id, ks));
    ++counters.leases_granted;
    counters.coords_leased += ks.size();
    Lease lease;
    lease.conn = c.id;
    lease.ks = std::move(ks);
    lease.last_activity = Clock::now();
    leases.emplace(lease_id, std::move(lease));
    c.state = Connection::State::Ready;
  }

  void serve_waiting() {
    std::vector<std::uint64_t> still;
    for (const std::uint64_t id : waiting) {
      const auto it = conns.find(id);
      if (it == conns.end() ||
          it->second.state != Connection::State::Waiting) {
        continue;
      }
      Connection& c = it->second;
      if (completed_count == n) {
        send(c, msg_bye());
        c.state = Connection::State::Ready;
        continue;
      }
      std::vector<std::size_t> ks = take_pending();
      if (ks.empty()) ks = steal_for(c.id);
      if (ks.empty()) {
        still.push_back(id);  // park until a requeue or the finish
        continue;
      }
      grant(c, std::move(ks));
    }
    waiting = std::move(still);
  }

  // ----------------------------------------------------------- poll loop

  void accept_joiners() {
    while (true) {
      Socket sock = listener.accept(0);
      if (!sock.valid()) break;
      sock.set_nonblocking(true);
      Connection c;
      c.id = next_conn++;
      c.sock = std::move(sock);
      conns.emplace(c.id, std::move(c));
    }
  }

  void pump(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    Connection& c = it->second;
    bool eof = false;
    try {
      while (true) {
        const int got = c.sock.read_available(c.dec.buffer());
        if (got > 0) continue;
        eof = got < 0;
        break;
      }
      // Drain complete frames before acting on EOF — the final frames of a
      // worker that finished and hung up are still valid results.
      while (c.state != Connection::State::Rejected &&
             c.dec.next(payload_scratch)) {
        handle_message(c, payload_scratch);
      }
    } catch (const Error& e) {
      drop_conn(id, e.what());
      return;
    }
    if (c.state == Connection::State::Rejected) {
      drop_conn(id, "rejected");
      return;
    }
    if (eof) {
      drop_conn(id, c.dec.mid_frame() ? "disconnected mid-frame"
                                      : "closed connection");
    }
  }

  void poll(int timeout_ms) {
    std::vector<struct pollfd> fds;
    std::vector<std::uint64_t> conn_ids;
    fds.push_back({listener.fd(), POLLIN, 0});
    for (auto& [id, c] : conns) {
      fds.push_back({c.sock.fd(), POLLIN, 0});
      conn_ids.push_back(id);
    }
    int rc = 0;
    do {
      rc = ::poll(fds.data(), fds.size(), timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc > 0) {
      if (fds[0].revents != 0) accept_joiners();
      for (std::size_t i = 0; i < conn_ids.size(); ++i) {
        if (fds[i + 1].revents != 0) pump(conn_ids[i]);
      }
    }
    expire_leases();
    serve_waiting();
    deliver_and_journal();
  }
};

Coordinator::Coordinator(const SweepPlan& plan, SweepSink& sink,
                         CoordinatorOptions options)
    : impl_(std::make_unique<Impl>(plan, sink, std::move(options))) {}

Coordinator::~Coordinator() = default;

std::uint16_t Coordinator::port() const noexcept {
  return impl_->listener.port();
}

bool Coordinator::finished() const noexcept {
  return impl_->next_deliver == impl_->n;
}

void Coordinator::poll(int timeout_ms) { impl_->poll(timeout_ms); }

void Coordinator::run(int tick_ms) {
  while (!finished()) poll(tick_ms);
}

std::size_t Coordinator::connections() const noexcept {
  return impl_->conns.size();
}

const CoordinatorStats& Coordinator::stats() const noexcept {
  return impl_->counters;
}

const std::string& Coordinator::last_disconnect_cause() const noexcept {
  return impl_->last_cause;
}

}  // namespace ftsched
