#include "ftsched/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ftsched {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
}

double percentile_sorted(const std::vector<double>& sorted,
                         double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  OnlineStats acc;
  for (double x : xs) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = xs.front();
  s.max = xs.back();
  s.p25 = percentile_sorted(xs, 0.25);
  s.median = percentile_sorted(xs, 0.50);
  s.p75 = percentile_sorted(xs, 0.75);
  return s;
}

}  // namespace ftsched
