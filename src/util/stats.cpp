#include "ftsched/util/stats.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <string_view>
#include <system_error>

#include "ftsched/util/error.hpp"

namespace ftsched {

OnlineStats OnlineStats::of(double x) noexcept {
  OnlineStats s;
  s.n_ = 1;
  s.mean_ = x;
  s.m2_ = 0.0;
  s.min_ = s.max_ = x;
  return s;
}

OnlineStats OnlineStats::from_parts(std::size_t count, double mean, double m2,
                                    double min, double max) noexcept {
  if (count == 0) return {};
  OnlineStats s;
  s.n_ = count;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

void OnlineStats::add(double x) noexcept {
  // Deliberately routed through merge(): sequential adds and a
  // coordinate-ordered merge of single-sample accumulators must agree
  // bit-for-bit (the sharded-sweep contract, see stats.hpp).
  merge(of(x));
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
}

std::string double_to_hex(double x) {
  // std::to_chars is locale-independent (snprintf("%a")/strtod are not:
  // a host locale with a ',' radix would corrupt the shard protocol).
  char buffer[64];
  const auto result =
      std::to_chars(buffer, buffer + sizeof(buffer), x, std::chars_format::hex);
  FTSCHED_ASSERT(result.ec == std::errc{}, "to_chars buffer too small");
  std::string digits(buffer, result.ptr);
  if (!std::isfinite(x)) return digits;  // "inf" / "-inf" / "nan"
  if (digits.front() == '-') return "-0x" + digits.substr(1);
  return "0x" + digits;
}

double hex_to_double(const std::string& text) {
  FTSCHED_REQUIRE(!text.empty(), "empty float literal");
  std::string_view body = text;
  const bool negative = body.front() == '-';
  if (negative || body.front() == '+') body.remove_prefix(1);
  if (body.size() >= 2 && body[0] == '0' && (body[1] == 'x' || body[1] == 'X')) {
    body.remove_prefix(2);
  }
  double value = 0.0;
  const auto result = std::from_chars(body.data(), body.data() + body.size(),
                                      value, std::chars_format::hex);
  FTSCHED_REQUIRE(
      result.ec == std::errc{} && result.ptr == body.data() + body.size(),
      "malformed hex-float literal: '" + text + "'");
  return negative ? -value : value;
}

double percentile_sorted(const std::vector<double>& sorted,
                         double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  OnlineStats acc;
  for (double x : xs) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = xs.front();
  s.max = xs.back();
  s.p25 = percentile_sorted(xs, 0.25);
  s.median = percentile_sorted(xs, 0.50);
  s.p75 = percentile_sorted(xs, 0.75);
  return s;
}

}  // namespace ftsched
