#include "ftsched/util/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {

[[noreturn]] void sys_error(const std::string& what, int err) {
  throw Error(what + ": " + std::strerror(err));
}

/// The framing prefix is explicit big-endian bytes, not a struct cast, so
/// the wire format is host-endianness-independent by construction.
void encode_len(std::uint32_t n, char out[4]) {
  out[0] = static_cast<char>((n >> 24) & 0xff);
  out[1] = static_cast<char>((n >> 16) & 0xff);
  out[2] = static_cast<char>((n >> 8) & 0xff);
  out[3] = static_cast<char>(n & 0xff);
}

std::uint32_t decode_len(const char in[4]) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[3]));
}

void check_frame_len(std::uint32_t n) {
  FTSCHED_REQUIRE(n <= kMaxNetFrameBytes,
                  "net: frame length " + std::to_string(n) +
                      " exceeds the protocol limit (corrupt stream?)");
}

/// poll(2) for `events`, retrying EINTR; true when an event is pending.
bool wait_events(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    sys_error("net: poll", errno);
  }
}

/// Blocking exact-count read, EINTR-retried.  Returns the bytes read
/// before EOF (== n normally, < n on end-of-stream).
std::size_t read_exact(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd, buf + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) break;  // EOF
    if (errno == EINTR) continue;
    sys_error("net: recv", errno);
  }
  return got;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    eof_ = other.eof_;
    recv_scratch_ = std::move(other.recv_scratch_);
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_message(std::string_view payload) {
  FTSCHED_REQUIRE(valid(), "net: send on a closed socket");
  check_frame_len(static_cast<std::uint32_t>(payload.size()));
  char prefix[4];
  encode_len(static_cast<std::uint32_t>(payload.size()), prefix);
  // Two buffers, one logical write; a short write of the prefix itself is
  // handled by the generic loop below.
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.append(prefix, 4);
  frame.append(payload.data(), payload.size());
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t rc =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Peer slow to drain (or socket switched non-blocking): wait for
      // writability rather than burning a spin loop.
      (void)wait_events(fd_, POLLOUT, -1);
      continue;
    }
    sys_error("net: send (peer gone?)", errno);
  }
}

bool Socket::recv_message(std::string& payload, int timeout_ms) {
  FTSCHED_REQUIRE(valid(), "net: recv on a closed socket");
  FTSCHED_REQUIRE(!eof_, "net: recv after end-of-stream");
  // A timed-out partial frame stays in recv_scratch_ so the next call
  // resumes it — the timeout is "no complete frame yet", never data loss.
  FrameDecoder scratch;
  scratch.buffer().swap(recv_scratch_);
  const bool had_partial = scratch.mid_frame();
  if (scratch.next(payload)) {
    scratch.buffer().swap(recv_scratch_);
    return true;
  }
  char prefix[4];
  if (timeout_ms >= 0 && !wait_events(fd_, POLLIN, timeout_ms)) {
    scratch.buffer().swap(recv_scratch_);
    return false;
  }
  // Blocking path: read the remainder of the length prefix, then the body.
  std::string& buf = scratch.buffer();
  while (buf.size() < 4) {
    const std::size_t got = read_exact(fd_, prefix, 4 - buf.size());
    if (got == 0) {
      eof_ = true;
      FTSCHED_REQUIRE(buf.empty() && !had_partial,
                      "net: peer closed mid-frame (truncated message)");
      return false;
    }
    buf.append(prefix, got);
  }
  const std::uint32_t len = decode_len(buf.data());
  check_frame_len(len);
  payload.resize(len);
  const std::size_t body_have = buf.size() - 4;
  std::memcpy(payload.data(), buf.data() + 4, body_have);
  const std::size_t got =
      read_exact(fd_, payload.data() + body_have, len - body_have);
  if (body_have + got < len) {
    eof_ = true;
    throw Error("net: peer closed mid-frame (truncated message)");
  }
  recv_scratch_.clear();
  return true;
}

void Socket::set_nonblocking(bool on) {
  FTSCHED_REQUIRE(valid(), "net: fcntl on a closed socket");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) sys_error("net: fcntl(F_GETFL)", errno);
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, next) < 0) sys_error("net: fcntl(F_SETFL)", errno);
}

int Socket::read_available(std::string& buf) {
  FTSCHED_REQUIRE(valid(), "net: read on a closed socket");
  char chunk[4096];
  while (true) {
    const ssize_t rc = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (rc > 0) {
      buf.append(chunk, static_cast<std::size_t>(rc));
      return static_cast<int>(rc);
    }
    if (rc == 0) {
      eof_ = true;
      return -1;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    sys_error("net: recv", errno);
  }
}

bool FrameDecoder::next(std::string& payload) {
  if (buf_.size() < 4) return false;
  const std::uint32_t len = decode_len(buf_.data());
  check_frame_len(len);
  if (buf_.size() < 4 + static_cast<std::size_t>(len)) return false;
  payload.assign(buf_, 4, len);
  buf_.erase(0, 4 + static_cast<std::size_t>(len));
  return true;
}

Socket connect_to(const std::string& host, std::uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  FTSCHED_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                  "net: not a numeric IPv4 host: " + host);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_error("net: socket", errno);
  Socket sock(fd);
  while (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) {
      // POSIX: an EINTR'd connect completes asynchronously — wait for
      // writability and check SO_ERROR instead of calling connect again.
      (void)wait_events(fd, POLLOUT, -1);
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        sys_error("net: getsockopt(SO_ERROR)", errno);
      }
      if (err != 0) sys_error("net: connect to " + host, err);
      break;
    }
    sys_error("net: connect to " + host + ":" + std::to_string(port), errno);
  }
  const int one = 1;
  // Lease/sample exchanges are small request/response frames; Nagle delays
  // only add latency here.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Listener::Listener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) sys_error("net: socket", errno);
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    close();
    sys_error("net: bind 127.0.0.1:" + std::to_string(port), err);
  }
  if (::listen(fd_, 64) != 0) {
    const int err = errno;
    close();
    sys_error("net: listen", err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    const int err = errno;
    close();
    sys_error("net: getsockname", err);
  }
  port_ = ntohs(addr.sin_port);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Listener::accept(int timeout_ms) {
  FTSCHED_REQUIRE(fd_ >= 0, "net: accept on a closed listener");
  if (!wait_events(fd_, POLLIN, timeout_ms)) return Socket();
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // The peer can vanish between poll and accept; that is a non-event for
    // the coordinator, not an error.
    if (errno == ECONNABORTED || errno == EAGAIN || errno == EWOULDBLOCK) {
      return Socket();
    }
    sys_error("net: accept", errno);
  }
}

bool wait_readable(int fd, int timeout_ms) {
  return wait_events(fd, POLLIN, timeout_ms);
}

}  // namespace ftsched
