#include "ftsched/util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "ftsched/util/error.hpp"

namespace ftsched {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  options_[name] = Option{default_value, help, /*is_flag=*/false};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{"0", help, /*is_flag=*/true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help();
      return false;
    }
    FTSCHED_REQUIRE(arg.rfind("--", 0) == 0, "expected --option, got: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = options_.find(arg);
    FTSCHED_REQUIRE(it != options_.end(), "unknown option: --" + arg);
    if (it->second.is_flag) {
      FTSCHED_REQUIRE(!has_value, "flag --" + arg + " takes no value");
      values_[arg] = "1";
    } else {
      if (!has_value) {
        FTSCHED_REQUIRE(i + 1 < argc, "option --" + arg + " needs a value");
        value = argv[++i];
      }
      values_[arg] = value;
    }
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto opt = options_.find(name);
  FTSCHED_REQUIRE(opt != options_.end(), "undeclared option: " + name);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : opt->second.default_value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + name + " is not an integer: " + v);
  }
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + name + " is not a number: " + v);
  }
}

bool CliParser::get_flag(const std::string& name) const {
  return get(name) == "1";
}

std::string CliParser::help() const {
  std::ostringstream os;
  os << description_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (!opt.is_flag) os << " <value> (default: " << opt.default_value << ")";
    os << "\n      " << opt.help << '\n';
  }
  return os.str();
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

}  // namespace ftsched
