#include "ftsched/util/jsonl.hpp"

#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {

[[noreturn]] void malformed(const std::string& where, const std::string& why) {
  throw InvalidArgument("malformed JSONL line (" + where + "): " + why);
}

void skip_spaces(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

/// Parses one JSON string into `out` (cleared first, capacity retained).
void parse_json_string(const std::string& s, std::size_t& i,
                       const std::string& where, std::string& out) {
  if (i >= s.size() || s[i] != '"') malformed(where, "expected '\"'");
  ++i;
  out.clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      ++i;
      if (i >= s.size()) malformed(where, "dangling escape");
      switch (s[i]) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        default: malformed(where, "unsupported escape");
      }
    } else {
      out.push_back(s[i]);
    }
    ++i;
  }
  if (i >= s.size()) malformed(where, "unterminated string");
  ++i;  // closing quote
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void FlatJsonObject::parse(const std::string& line, const std::string& where) {
  used_ = 0;
  std::size_t i = 0;
  skip_spaces(line, i);
  if (i >= line.size() || line[i] != '{') malformed(where, "expected '{'");
  ++i;
  skip_spaces(line, i);
  if (i < line.size() && line[i] == '}') return;
  while (true) {
    if (used_ == fields_.size()) fields_.emplace_back();
    Field& f = fields_[used_];
    skip_spaces(line, i);
    parse_json_string(line, i, where, f.key);
    for (std::size_t j = 0; j < used_; ++j) {
      if (fields_[j].key == f.key) {
        malformed(where, "duplicate key '" + f.key + "'");
      }
    }
    skip_spaces(line, i);
    if (i >= line.size() || line[i] != ':') malformed(where, "expected ':'");
    ++i;
    skip_spaces(line, i);
    if (i < line.size() && line[i] == '"') {
      parse_json_string(line, i, where, f.value);
    } else {
      f.value.clear();
      while (i < line.size() && line[i] != ',' && line[i] != '}') {
        f.value.push_back(line[i]);
        ++i;
      }
      while (!f.value.empty() &&
             (f.value.back() == ' ' || f.value.back() == '\t')) {
        f.value.pop_back();
      }
    }
    ++used_;
    skip_spaces(line, i);
    if (i >= line.size()) malformed(where, "unterminated object");
    if (line[i] == '}') break;
    if (line[i] != ',') malformed(where, "expected ',' or '}'");
    ++i;
  }
}

const std::string* FlatJsonObject::find(const char* key) const {
  for (std::size_t j = 0; j < used_; ++j) {
    if (fields_[j].key == key) return &fields_[j].value;
  }
  return nullptr;
}

const std::string& FlatJsonObject::field(const char* key,
                                         const std::string& where) const {
  const std::string* value = find(key);
  if (value == nullptr) {
    malformed(where, std::string("missing key '") + key + "'");
  }
  return *value;
}

std::string FlatJsonObject::field_or(const char* key,
                                     const char* fallback) const {
  const std::string* value = find(key);
  return value == nullptr ? std::string(fallback) : *value;
}

}  // namespace ftsched
