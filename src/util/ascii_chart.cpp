#include "ftsched/util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "ftsched/util/error.hpp"

namespace ftsched {

std::string render_chart(const std::vector<double>& xs,
                         const std::vector<ChartSeries>& series,
                         const ChartOptions& options) {
  FTSCHED_REQUIRE(!xs.empty(), "chart needs at least one x position");
  FTSCHED_REQUIRE(options.width >= 10 && options.height >= 4,
                  "chart area too small");
  for (const ChartSeries& s : series) {
    FTSCHED_REQUIRE(s.y.size() == xs.size(),
                    "series '" + s.name + "' length mismatch");
  }

  double ymin = options.y_from_zero ? 0.0
                                    : std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();
  for (const ChartSeries& s : series) {
    for (double v : s.y) {
      ymin = std::min(ymin, v);
      ymax = std::max(ymax, v);
    }
  }
  if (!std::isfinite(ymax)) ymax = 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  const double xmin = xs.front();
  const double xmax = std::max(xs.back(), xmin + 1e-12);

  std::vector<std::string> grid(options.height,
                                std::string(options.width, ' '));
  auto col_of = [&](double x) {
    const double f = (x - xmin) / (xmax - xmin);
    return std::min(options.width - 1,
                    static_cast<std::size_t>(f * (options.width - 1) + 0.5));
  };
  auto row_of = [&](double y) {
    const double f = (y - ymin) / (ymax - ymin);
    const auto from_bottom =
        static_cast<std::size_t>(f * (options.height - 1) + 0.5);
    return options.height - 1 - std::min(from_bottom, options.height - 1);
  };

  for (const ChartSeries& s : series) {
    // Connect consecutive points with linearly interpolated markers so the
    // lines read as lines even on a coarse grid.
    for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
      const std::size_t c0 = col_of(xs[i]);
      const std::size_t c1 = col_of(xs[i + 1]);
      for (std::size_t c = c0; c <= c1; ++c) {
        const double t =
            c1 > c0 ? static_cast<double>(c - c0) / (c1 - c0) : 0.0;
        const double y = s.y[i] + t * (s.y[i + 1] - s.y[i]);
        grid[row_of(y)][c] = s.marker;
      }
    }
    if (xs.size() == 1) grid[row_of(s.y[0])][col_of(xs[0])] = s.marker;
  }

  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  for (std::size_t r = 0; r < options.height; ++r) {
    // y tick labels on the first, middle and last rows.
    double label = std::numeric_limits<double>::quiet_NaN();
    if (r == 0) label = ymax;
    if (r == options.height / 2) label = ymin + (ymax - ymin) * 0.5;
    if (r == options.height - 1) label = ymin;
    if (std::isnan(label)) {
      os << std::string(9, ' ');
    } else {
      os << std::setw(8) << label << ' ';
    }
    os << '|' << grid[r] << '\n';
  }
  os << std::string(9, ' ') << '+' << std::string(options.width, '-') << '\n';
  os << std::string(10, ' ') << xmin
     << std::string(options.width > 14 ? options.width - 14 : 1, ' ') << xmax
     << '\n';
  os << "legend:";
  for (const ChartSeries& s : series) {
    os << "  " << s.marker << '=' << s.name;
  }
  os << '\n';
  return os.str();
}

}  // namespace ftsched
