#include "ftsched/util/subprocess.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {

ChildOutcome outcome_from_status(int status) {
  ChildOutcome outcome;
  if (WIFEXITED(status)) {
    outcome.exited = true;
    outcome.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    outcome.exited = false;
    outcome.signal_number = WTERMSIG(status);
  } else {
    // Neither exit nor signal (stopped?) — report as an odd exit.
    outcome.exited = true;
    outcome.exit_code = -1;
  }
  return outcome;
}

/// Opens `path` for the child's stdout/stderr; -1 = inherit.
int open_redirect(const std::string& path) {
  if (path.empty()) return -1;
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw Error("cannot open redirect file '" + path +
                "': " + std::strerror(errno));
  }
  return fd;
}

}  // namespace

std::string ChildOutcome::describe() const {
  if (exited) {
    std::string out = "exited with status " + std::to_string(exit_code);
    // 127 is the shell's (and our child stub's) cannot-exec convention.
    if (exit_code == 127) out += " (could not execute the binary?)";
    return out;
  }
  std::string out = "killed by signal " + std::to_string(signal_number);
  const char* name = ::strsignal(signal_number);
  if (name != nullptr) out += std::string(" (") + name + ")";
  return out;
}

ChildProcess ChildProcess::spawn(const std::vector<std::string>& argv,
                                 const std::string& stdout_path,
                                 const std::string& stderr_path) {
  FTSCHED_REQUIRE(!argv.empty(), "ChildProcess::spawn needs argv[0]");
  const int out_fd = open_redirect(stdout_path);
  const int err_fd = open_redirect(stderr_path);

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    if (out_fd >= 0) ::close(out_fd);
    if (err_fd >= 0) ::close(err_fd);
    throw Error("fork failed: " + std::string(std::strerror(err)));
  }
  if (pid == 0) {
    // Child.  Only async-signal-safe calls from here on.
    if (out_fd >= 0 && ::dup2(out_fd, STDOUT_FILENO) < 0) ::_exit(127);
    if (err_fd >= 0 && ::dup2(err_fd, STDERR_FILENO) < 0) ::_exit(127);
    if (argv[0].find('/') == std::string::npos) {
      ::execvp(cargv[0], cargv.data());
    } else {
      ::execv(cargv[0], cargv.data());
    }
    // exec only returns on failure; explain on (the redirected) stderr.
    const char* prefix = "exec failed: ";
    const char* reason = std::strerror(errno);
    (void)!::write(STDERR_FILENO, prefix, std::strlen(prefix));
    (void)!::write(STDERR_FILENO, cargv[0], std::strlen(cargv[0]));
    (void)!::write(STDERR_FILENO, ": ", 2);
    (void)!::write(STDERR_FILENO, reason, std::strlen(reason));
    (void)!::write(STDERR_FILENO, "\n", 1);
    ::_exit(127);
  }
  // Parent.
  if (out_fd >= 0) ::close(out_fd);
  if (err_fd >= 0) ::close(err_fd);
  ChildProcess child;
  child.pid_ = pid;
  return child;
}

ChildOutcome ChildProcess::wait() {
  FTSCHED_REQUIRE(pid_ > 0, "ChildProcess::wait called on an empty handle");
  int status = 0;
  pid_t reaped = -1;
  do {
    reaped = ::waitpid(static_cast<pid_t>(pid_), &status, 0);
  } while (reaped < 0 && errno == EINTR);
  pid_ = -1;
  if (reaped < 0) {
    throw Error("waitpid failed: " + std::string(std::strerror(errno)));
  }
  return outcome_from_status(status);
}

std::optional<ChildOutcome> ChildProcess::try_wait() {
  FTSCHED_REQUIRE(pid_ > 0, "ChildProcess::try_wait on an empty handle");
  int status = 0;
  pid_t reaped = -1;
  do {
    reaped = ::waitpid(static_cast<pid_t>(pid_), &status, WNOHANG);
  } while (reaped < 0 && errno == EINTR);
  if (reaped == 0) return std::nullopt;  // still running
  pid_ = -1;
  if (reaped < 0) {
    throw Error("waitpid failed: " + std::string(std::strerror(errno)));
  }
  return outcome_from_status(status);
}

void ChildProcess::kill(int sig) noexcept {
  if (pid_ > 0) (void)::kill(static_cast<pid_t>(pid_), sig);
}

std::string stderr_tail(const std::string& path, std::size_t limit) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  if (text.size() > limit) text.erase(0, text.size() - limit);
  while (!text.empty() &&
         (text.back() == '\n' || text.back() == '\r' || text.back() == ' ')) {
    text.pop_back();
  }
  return text;
}

std::string self_executable_path() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return {};
  return std::string(buffer, static_cast<std::size_t>(n));
}

}  // namespace ftsched
