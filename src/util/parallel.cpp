#include "ftsched/util/parallel.hpp"

namespace ftsched {

std::size_t ParallelExecutor::resolve_thread_count(std::size_t threads) noexcept {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ParallelExecutor::ParallelExecutor(std::size_t threads) {
  const std::size_t total = resolve_thread_count(threads);
  workers_.reserve(total - 1);
  for (std::size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ParallelExecutor::run_indices(const std::function<void(std::size_t)>& fn) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      // Abandon the remaining indices: push the counter past the end.
      next_.store(count_, std::memory_order_relaxed);
      return;
    }
  }
}

void ParallelExecutor::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
    }
    run_indices(*fn);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--running_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelExecutor::for_each(std::size_t count,
                                const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  first_error_ = nullptr;
  if (workers_.empty() || count == 1) {
    // Serial path: identical to a plain loop (threads=1 behavior).
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    running_workers_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  run_indices(fn);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return running_workers_ == 0; });
    fn_ = nullptr;
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace ftsched
