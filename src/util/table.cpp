#include "ftsched/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ftsched {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::add_numeric_row(const std::string& label,
                                const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  // Column widths over header + all rows.
  std::vector<std::size_t> width;
  auto widen = [&width](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(width[i])) << cells[i];
      if (i + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < width.size(); ++i)
      total += width[i] + (i + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::string TextTable::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  // RFC-4180 quoting, applied only when needed: cells without special
  // characters (the common case — every numeric cell) render unchanged.
  auto emit_cell = [&os](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      os << cell;
      return;
    }
    os << '"';
    for (char c : cell) {
      if (c == '"') os << '"';
      os << c;
    }
    os << '"';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      emit_cell(cells[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace ftsched
