#include "ftsched/util/spec.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace ftsched {

namespace spec_detail {

std::string join(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::uint64_t v = 0;
  bool ok = !value.empty() && value[0] != '-';
  if (ok) {
    try {
      std::size_t pos = 0;
      v = std::stoull(value, &pos);
      ok = pos == value.size();
    } catch (const std::logic_error&) {
      ok = false;
    }
  }
  if (!ok) {
    throw InvalidArgument("option '" + key +
                          "': expected a non-negative integer, got '" + value +
                          "'");
  }
  return v;
}

double parse_double(const std::string& key, const std::string& value) {
  // std::from_chars, not std::stod: stod honors the global C locale, so
  // under e.g. de_DE.UTF-8 (radix ',') a spec like "frac:f=0.5" would stop
  // parsing at the '.' and be rejected — spec strings must mean the same
  // thing on every machine of a sharded sweep.
  double v = 0.0;
  const char* first = value.data();
  const char* last = first + value.size();
  if (first != last && *first == '+') ++first;  // from_chars rejects '+'
  bool ok = first != last;
  if (ok) {
    const auto result = std::from_chars(first, last, v);
    ok = result.ec == std::errc{} && result.ptr == last;
  }
  if (!ok) {
    throw InvalidArgument("option '" + key + "': expected a number, got '" +
                          value + "'");
  }
  return v;
}

std::string render_double(double value) {
  // std::to_chars, not ostringstream: the stream would render the radix of
  // an imbued locale ("0,5"), breaking to_string/parse round trips of
  // canonical specs.  to_chars also emits the *shortest* form that parses
  // back bit-identically.
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  // 32 bytes always fit the shortest round-trip form of a double.
  return std::string(buffer, result.ptr);
}

}  // namespace spec_detail

void split_spec_string(const std::string& spec, std::string& name,
                       std::string& option_text) {
  const auto colon = spec.find(':');
  name = spec.substr(0, colon);
  option_text =
      colon == std::string::npos ? std::string() : spec.substr(colon + 1);
}

SpecOptions SpecOptions::parse(const std::string& text) {
  SpecOptions options;
  if (text.empty()) return options;
  if (text.back() == ',') {
    // getline would silently drop the empty trailing segment.
    throw InvalidArgument("malformed options '" + text + "' (trailing comma)");
  }
  std::istringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw InvalidArgument("malformed option '" + item +
                            "' (expected key=value)");
    }
    const std::string key = item.substr(0, eq);
    if (options.values_.find(key) != options.values_.end()) {
      throw InvalidArgument("duplicate option '" + key + "'");
    }
    options.values_[key] = item.substr(eq + 1);
  }
  return options;
}

bool SpecOptions::has(const std::string& key) const {
  return values_.find(key) != values_.end();
}

void SpecOptions::set_default(const std::string& key,
                              const std::string& value) {
  values_.emplace(key, value);
}

void SpecOptions::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

const std::string& SpecOptions::get(const std::string& key) const {
  const auto it = values_.find(key);
  FTSCHED_REQUIRE(it != values_.end(), "missing option '" + key + "'");
  return it->second;
}

std::string SpecOptions::get(const std::string& key,
                             const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::size_t SpecOptions::get_size(const std::string& key,
                                  std::size_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return static_cast<std::size_t>(spec_detail::parse_u64(key, it->second));
}

std::uint64_t SpecOptions::get_u64(const std::string& key,
                                   std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return spec_detail::parse_u64(key, it->second);
}

double SpecOptions::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return spec_detail::parse_double(key, it->second);
}

bool SpecOptions::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true") return true;
  if (v == "0" || v == "false") return false;
  throw InvalidArgument("option '" + key + "': expected 0|1|false|true, got '" +
                        v + "'");
}

std::vector<std::string> SpecOptions::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

std::string SpecOptions::to_string() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const auto& [key, value] : values_) parts.push_back(key + "=" + value);
  return spec_detail::join(parts, ",");
}

}  // namespace ftsched
