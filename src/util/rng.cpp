#include "ftsched/util/rng.hpp"

#include <cmath>

#include "ftsched/util/error.hpp"

namespace ftsched {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire-style rejection-free bounded draw with bias negligible for the
  // ranges used here; use rejection to stay exact.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % range;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % range);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::exponential(double rate) noexcept {
  // Inverse-CDF; uniform() < 1 so the log argument is > 0.
  return -std::log(1.0 - uniform()) / rate;
}

Rng Rng::split() noexcept {
  // Derive a child seed from two output words; the parent state advances,
  // so successive splits give distinct streams.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 32) ^ 0xd1b54a32d192ed03ULL);
}

Rng Rng::derive(std::uint64_t key) const noexcept {
  // Mix the full state with the key through SplitMix64 so nearby keys give
  // unrelated streams; the parent state is read, never advanced.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 31) ^
                     rotl(s_[3], 47) ^ (key + 0x9e3779b97f4a7c15ULL);
  const std::uint64_t a = splitmix64(sm);
  const std::uint64_t b = splitmix64(sm);
  return Rng(a ^ rotl(b, 32) ^ key);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  FTSCHED_REQUIRE(k <= n, "cannot sample more elements than the population");
  // Floyd's algorithm: O(k) expected, no O(n) scratch for small k.
  std::vector<std::size_t> picked;
  picked.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(j)));
    bool seen = false;
    for (std::size_t p : picked) {
      if (p == t) {
        seen = true;
        break;
      }
    }
    picked.push_back(seen ? j : t);
  }
  return picked;
}

}  // namespace ftsched
