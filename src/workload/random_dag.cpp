#include "ftsched/workload/random_dag.hpp"

#include <algorithm>
#include <numeric>

#include "ftsched/util/error.hpp"

namespace ftsched {

TaskGraph make_layered_dag(Rng& rng, const LayeredDagParams& params) {
  FTSCHED_REQUIRE(params.task_count > 0, "task_count must be positive");
  FTSCHED_REQUIRE(params.avg_layer_width > 0, "avg_layer_width must be positive");
  FTSCHED_REQUIRE(params.edge_probability >= 0.0 &&
                      params.edge_probability <= 1.0,
                  "edge_probability must be in [0,1]");
  FTSCHED_REQUIRE(params.max_layer_jump >= 1, "max_layer_jump must be >= 1");
  FTSCHED_REQUIRE(params.volume_min >= 0.0 &&
                      params.volume_max >= params.volume_min,
                  "invalid volume range");

  TaskGraph g("layered_random");
  // Carve the tasks into layers of random size.
  std::vector<std::vector<TaskId>> layer_tasks;
  std::size_t remaining = params.task_count;
  while (remaining > 0) {
    const auto lo = std::int64_t{1};
    const auto hi =
        static_cast<std::int64_t>(2 * params.avg_layer_width - 1);
    auto size = static_cast<std::size_t>(rng.uniform_int(lo, hi));
    size = std::min(size, remaining);
    std::vector<TaskId> layer;
    layer.reserve(size);
    for (std::size_t i = 0; i < size; ++i) layer.push_back(g.add_task());
    layer_tasks.push_back(std::move(layer));
    remaining -= size;
  }

  auto volume = [&rng, &params] {
    return rng.uniform(params.volume_min, params.volume_max);
  };

  // Draw edges from nearby earlier layers.
  for (std::size_t l = 1; l < layer_tasks.size(); ++l) {
    const std::size_t first_src_layer =
        l >= params.max_layer_jump ? l - params.max_layer_jump : 0;
    for (TaskId t : layer_tasks[l]) {
      for (std::size_t sl = first_src_layer; sl < l; ++sl) {
        for (TaskId s : layer_tasks[sl]) {
          if (rng.bernoulli(params.edge_probability)) {
            g.add_edge(s, t, volume());
          }
        }
      }
      if (params.connect && g.in_degree(t) == 0) {
        // Force one predecessor from the immediately preceding layer.
        const auto& prev = layer_tasks[l - 1];
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(prev.size()) - 1));
        g.add_edge(prev[pick], t, volume());
      }
    }
  }
  if (params.connect) {
    // Every non-final-layer task needs a successor.
    for (std::size_t l = 0; l + 1 < layer_tasks.size(); ++l) {
      for (TaskId t : layer_tasks[l]) {
        if (g.out_degree(t) > 0) continue;
        const auto& next = layer_tasks[l + 1];
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(next.size()) - 1));
        if (!g.has_edge(t, next[pick])) g.add_edge(t, next[pick], volume());
      }
    }
  }
  return g;
}

TaskGraph make_gnp_dag(Rng& rng, const GnpDagParams& params) {
  FTSCHED_REQUIRE(params.task_count > 0, "task_count must be positive");
  FTSCHED_REQUIRE(params.edge_probability >= 0.0 &&
                      params.edge_probability <= 1.0,
                  "edge_probability must be in [0,1]");
  TaskGraph g("gnp_random");
  std::vector<TaskId> tasks;
  tasks.reserve(params.task_count);
  for (std::size_t i = 0; i < params.task_count; ++i)
    tasks.push_back(g.add_task());
  // Random topological permutation so edge direction is unbiased w.r.t. id.
  std::vector<std::size_t> perm(params.task_count);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.shuffle(perm);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    for (std::size_t j = i + 1; j < perm.size(); ++j) {
      if (rng.bernoulli(params.edge_probability)) {
        g.add_edge(tasks[perm[i]], tasks[perm[j]],
                   rng.uniform(params.volume_min, params.volume_max));
      }
    }
  }
  return g;
}

}  // namespace ftsched
