#include "ftsched/workload/paper_workload.hpp"

#include <algorithm>
#include <cmath>

#include "ftsched/util/error.hpp"
#include "ftsched/workload/granularity.hpp"

namespace ftsched {

Workload::Workload(TaskGraph graph, Platform platform,
                   std::vector<std::vector<double>> exec)
    : graph_(std::make_unique<TaskGraph>(std::move(graph))),
      platform_(std::make_unique<Platform>(std::move(platform))),
      costs_(std::make_unique<CostModel>(*graph_, *platform_,
                                         std::move(exec))) {}

std::unique_ptr<Workload> make_workload_for_graph(
    Rng& rng, TaskGraph graph, const PaperWorkloadParams& params) {
  PlatformParams platform_params;
  platform_params.proc_count = params.proc_count;
  platform_params.delay_min = params.delay_min;
  platform_params.delay_max = params.delay_max;
  Platform platform = make_random_platform(rng, platform_params);

  auto exec = make_exec_costs(rng, graph, params.proc_count, params.exec);
  auto workload = std::make_unique<Workload>(std::move(graph),
                                             std::move(platform),
                                             std::move(exec));
  if (workload->graph().edge_count() > 0 &&
      std::isfinite(workload->costs().granularity())) {
    set_granularity(workload->costs(), params.granularity);
  }
  return workload;
}

std::unique_ptr<Workload> make_paper_workload(
    Rng& rng, const PaperWorkloadParams& params) {
  FTSCHED_REQUIRE(params.task_min > 0 && params.task_max >= params.task_min,
                  "invalid task count range");
  LayeredDagParams dag_params;
  dag_params.task_count = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(params.task_min),
                      static_cast<std::int64_t>(params.task_max)));
  dag_params.avg_layer_width =
      params.avg_layer_width != 0
          ? params.avg_layer_width
          : std::max<std::size_t>(8, dag_params.task_count / 15);
  dag_params.volume_min = params.volume_min;
  dag_params.volume_max = params.volume_max;
  TaskGraph graph = make_layered_dag(rng, dag_params);
  return make_workload_for_graph(rng, std::move(graph), params);
}

}  // namespace ftsched
