#include "ftsched/workload/classic.hpp"

#include <string>
#include <vector>

#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {
bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

TaskGraph make_chain(std::size_t length, const ClassicParams& params) {
  FTSCHED_REQUIRE(length > 0, "chain needs at least one task");
  TaskGraph g("chain");
  TaskId prev = g.add_task();
  for (std::size_t i = 1; i < length; ++i) {
    const TaskId cur = g.add_task();
    g.add_edge(prev, cur, params.volume);
    prev = cur;
  }
  return g;
}

TaskGraph make_fork_join(std::size_t width, const ClassicParams& params) {
  FTSCHED_REQUIRE(width > 0, "fork-join needs at least one branch");
  TaskGraph g("fork_join");
  const TaskId src = g.add_task("fork");
  const TaskId dst = g.add_task("join");
  for (std::size_t i = 0; i < width; ++i) {
    const TaskId mid = g.add_task("branch" + std::to_string(i));
    g.add_edge(src, mid, params.volume);
    g.add_edge(mid, dst, params.volume);
  }
  return g;
}

TaskGraph make_in_tree(std::size_t leaves, const ClassicParams& params) {
  FTSCHED_REQUIRE(is_power_of_two(leaves), "leaves must be a power of two");
  TaskGraph g("in_tree");
  // Build level by level from the leaves toward the root.
  std::vector<TaskId> level;
  level.reserve(leaves);
  for (std::size_t i = 0; i < leaves; ++i) level.push_back(g.add_task());
  while (level.size() > 1) {
    std::vector<TaskId> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const TaskId parent = g.add_task();
      g.add_edge(level[i], parent, params.volume);
      g.add_edge(level[i + 1], parent, params.volume);
      next.push_back(parent);
    }
    level = std::move(next);
  }
  return g;
}

TaskGraph make_out_tree(std::size_t leaves, const ClassicParams& params) {
  FTSCHED_REQUIRE(is_power_of_two(leaves), "leaves must be a power of two");
  TaskGraph g("out_tree");
  std::vector<TaskId> level{g.add_task("root")};
  while (level.size() < leaves) {
    std::vector<TaskId> next;
    next.reserve(level.size() * 2);
    for (TaskId parent : level) {
      const TaskId a = g.add_task();
      const TaskId b = g.add_task();
      g.add_edge(parent, a, params.volume);
      g.add_edge(parent, b, params.volume);
      next.push_back(a);
      next.push_back(b);
    }
    level = std::move(next);
  }
  return g;
}

TaskGraph make_fft(std::size_t points, const ClassicParams& params) {
  FTSCHED_REQUIRE(is_power_of_two(points), "points must be a power of two");
  TaskGraph g("fft");
  std::size_t stages = 0;
  for (std::size_t p = points; p > 1; p >>= 1) ++stages;
  std::vector<TaskId> prev(points);
  for (std::size_t i = 0; i < points; ++i)
    prev[i] = g.add_task("in" + std::to_string(i));
  for (std::size_t s = 0; s < stages; ++s) {
    const std::size_t stride = std::size_t{1} << s;
    std::vector<TaskId> cur(points);
    for (std::size_t i = 0; i < points; ++i) {
      cur[i] = g.add_task("s" + std::to_string(s + 1) + "_" +
                          std::to_string(i));
    }
    for (std::size_t i = 0; i < points; ++i) {
      g.add_edge(prev[i], cur[i], params.volume);
      g.add_edge(prev[i ^ stride], cur[i], params.volume);
    }
    prev = std::move(cur);
  }
  return g;
}

TaskGraph make_gaussian_elimination(std::size_t n,
                                    const ClassicParams& params) {
  FTSCHED_REQUIRE(n >= 2, "gaussian elimination needs n >= 2");
  TaskGraph g("gaussian_elimination");
  // pivot[k] = T_kk; update(k, j) for j in (k, n): classic wavefront.
  std::vector<std::vector<TaskId>> update(n);
  std::vector<TaskId> pivot(n - 1);
  for (std::size_t k = 0; k + 1 < n; ++k) {
    pivot[k] = g.add_task("piv" + std::to_string(k));
    update[k].assign(n, TaskId{});
    for (std::size_t j = k + 1; j < n; ++j) {
      update[k][j] = g.add_task("upd" + std::to_string(k) + "_" +
                                std::to_string(j));
      g.add_edge(pivot[k], update[k][j], params.volume);
      if (k > 0) g.add_edge(update[k - 1][j], update[k][j], params.volume);
    }
    if (k > 0) g.add_edge(update[k - 1][k], pivot[k], params.volume);
  }
  return g;
}

TaskGraph make_wavefront(std::size_t rows, std::size_t cols,
                         const ClassicParams& params) {
  FTSCHED_REQUIRE(rows > 0 && cols > 0, "wavefront needs a non-empty grid");
  TaskGraph g("wavefront");
  std::vector<std::vector<TaskId>> cell(rows, std::vector<TaskId>(cols));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      cell[r][c] =
          g.add_task("c" + std::to_string(r) + "_" + std::to_string(c));
      if (r > 0) g.add_edge(cell[r - 1][c], cell[r][c], params.volume);
      if (c > 0) g.add_edge(cell[r][c - 1], cell[r][c], params.volume);
    }
  }
  return g;
}

namespace {
// Recursively builds a series-parallel component with roughly `budget`
// tasks; returns its (source, sink). budget >= 1.
struct SpBuilder {
  TaskGraph& g;
  Rng& rng;
  double volume;

  std::pair<TaskId, TaskId> build(std::size_t budget) {
    if (budget <= 1) {
      const TaskId t = g.add_task();
      return {t, t};
    }
    if (budget == 2 || rng.bernoulli(0.5)) {
      // Series: split the budget between two sub-components.
      const auto left = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(budget) - 1));
      const auto [s1, t1] = build(left);
      const auto [s2, t2] = build(budget - left);
      g.add_edge(t1, s2, volume);
      return {s1, t2};
    }
    // Parallel: dedicated source and sink around 2 branches.
    const TaskId src = g.add_task();
    const TaskId dst = g.add_task();
    const std::size_t inner = budget - 2;
    const auto left = inner <= 1
                          ? inner
                          : static_cast<std::size_t>(rng.uniform_int(
                                1, static_cast<std::int64_t>(inner) - 1));
    for (const std::size_t branch_budget : {left, inner - left}) {
      if (branch_budget == 0) {
        if (!g.has_edge(src, dst)) g.add_edge(src, dst, volume);
        continue;
      }
      const auto [s, t] = build(branch_budget);
      g.add_edge(src, s, volume);
      g.add_edge(t, dst, volume);
    }
    return {src, dst};
  }
};
}  // namespace

TaskGraph make_series_parallel(Rng& rng, std::size_t task_count,
                               const ClassicParams& params) {
  FTSCHED_REQUIRE(task_count > 0, "series-parallel needs at least one task");
  TaskGraph g("series_parallel");
  SpBuilder builder{g, rng, params.volume};
  (void)builder.build(task_count);
  return g;
}

TaskGraph make_cholesky(std::size_t tiles, const ClassicParams& params) {
  FTSCHED_REQUIRE(tiles >= 2, "cholesky needs at least a 2x2 tile matrix");
  TaskGraph g("cholesky");
  const std::size_t b = tiles;
  auto name = [](const char* kind, std::size_t i, std::size_t j) {
    return std::string(kind) + std::to_string(i) + "_" + std::to_string(j);
  };
  // writer[i][j]: the task that last wrote tile (i, j) (lower triangle).
  std::vector<std::vector<TaskId>> writer(b, std::vector<TaskId>(b));
  auto link = [&](TaskId from, TaskId to) {
    if (from.valid() && !g.has_edge(from, to)) g.add_edge(from, to, params.volume);
  };
  for (std::size_t k = 0; k < b; ++k) {
    const TaskId potrf = g.add_task(name("potrf", k, k));
    link(writer[k][k], potrf);
    writer[k][k] = potrf;
    for (std::size_t i = k + 1; i < b; ++i) {
      const TaskId trsm = g.add_task(name("trsm", i, k));
      link(potrf, trsm);
      link(writer[i][k], trsm);
      writer[i][k] = trsm;
    }
    for (std::size_t i = k + 1; i < b; ++i) {
      for (std::size_t j = k + 1; j <= i; ++j) {
        const bool diag = (i == j);
        const TaskId update =
            g.add_task(name(diag ? "syrk" : "gemm", i, j));
        link(writer[i][k], update);           // panel column entry i
        if (!diag) link(writer[j][k], update);  // panel column entry j
        link(writer[i][j], update);           // previous value of the tile
        writer[i][j] = update;
      }
    }
  }
  return g;
}

TaskGraph make_lu(std::size_t tiles, const ClassicParams& params) {
  FTSCHED_REQUIRE(tiles >= 2, "lu needs at least a 2x2 tile matrix");
  TaskGraph g("lu");
  const std::size_t b = tiles;
  auto name = [](const char* kind, std::size_t i, std::size_t j) {
    return std::string(kind) + std::to_string(i) + "_" + std::to_string(j);
  };
  std::vector<std::vector<TaskId>> writer(b, std::vector<TaskId>(b));
  auto link = [&](TaskId from, TaskId to) {
    if (from.valid() && !g.has_edge(from, to)) g.add_edge(from, to, params.volume);
  };
  for (std::size_t k = 0; k < b; ++k) {
    const TaskId getrf = g.add_task(name("getrf", k, k));
    link(writer[k][k], getrf);
    writer[k][k] = getrf;
    for (std::size_t i = k + 1; i < b; ++i) {
      const TaskId trsm_col = g.add_task(name("trsmL", i, k));
      link(getrf, trsm_col);
      link(writer[i][k], trsm_col);
      writer[i][k] = trsm_col;
      const TaskId trsm_row = g.add_task(name("trsmU", k, i));
      link(getrf, trsm_row);
      link(writer[k][i], trsm_row);
      writer[k][i] = trsm_row;
    }
    for (std::size_t i = k + 1; i < b; ++i) {
      for (std::size_t j = k + 1; j < b; ++j) {
        const TaskId gemm = g.add_task(name("gemm", i, j));
        link(writer[i][k], gemm);
        link(writer[k][j], gemm);
        link(writer[i][j], gemm);
        writer[i][j] = gemm;
      }
    }
  }
  return g;
}

}  // namespace ftsched
