#include "ftsched/workload/granularity.hpp"

#include <cmath>

#include "ftsched/util/error.hpp"

namespace ftsched {

void set_granularity(CostModel& costs, double target) {
  FTSCHED_REQUIRE(target > 0.0, "granularity target must be positive");
  const double current = costs.granularity();
  FTSCHED_REQUIRE(std::isfinite(current),
                  "graph has no communication; granularity is infinite");
  costs.scale_exec(target / current);
}

}  // namespace ftsched
