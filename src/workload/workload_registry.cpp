#include "ftsched/workload/workload_registry.hpp"

#include <fstream>
#include <functional>
#include <iomanip>
#include <sstream>

#include "ftsched/dag/serialize.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/workload/classic.hpp"
#include "ftsched/workload/random_dag.hpp"

namespace ftsched {

namespace {

/// Which sweep dimensions a spec pinned explicitly (pinned values win over
/// the SweepPoint, mirroring how explicit scheduler options win over
/// injected defaults).
struct PinnedDims {
  bool procs = false;
  bool granularity = false;
};

using spec_detail::render_double;

/// Builds "family:k=v,..." from emitted parts (mirrors the scheduler
/// adapters' canonical-name convention: only non-default options listed).
class NameBuilder {
 public:
  explicit NameBuilder(std::string family) : family_(std::move(family)) {}

  void emit(const std::string& key, const std::string& value) {
    parts_.push_back(key + "=" + value);
  }
  void emit_size(const std::string& key, std::size_t value,
                 std::size_t unless) {
    if (value != unless) emit(key, std::to_string(value));
  }
  void emit_num(const std::string& key, double value, double unless) {
    if (value != unless) emit(key, render_double(value));
  }

  [[nodiscard]] std::string str() const {
    if (parts_.empty()) return family_;
    return family_ + ":" + spec_detail::join(parts_, ",");
  }

 private:
  std::string family_;
  std::vector<std::string> parts_;
};

/// The one concrete WorkloadFamily: name/description plus an immutable
/// generator closure (families differ only in how they build the graph and
/// parameterize the platform, so a closure keeps the adapters compact).
class ConfiguredFamily final : public WorkloadFamily {
 public:
  using Generator =
      std::function<std::unique_ptr<Workload>(Rng&, const SweepPoint&)>;

  ConfiguredFamily(std::string name, std::string description,
                   Generator generator)
      : name_(std::move(name)),
        description_(std::move(description)),
        generator_(std::move(generator)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::string describe() const override { return description_; }
  [[nodiscard]] std::unique_ptr<Workload> generate(
      Rng& rng, const SweepPoint& point) const override {
    return generator_(rng, point);
  }

 private:
  std::string name_;
  std::string description_;
  Generator generator_;
};

/// Applies the sweep point to the dimensions the spec left unpinned.
PaperWorkloadParams resolve_params(const PaperWorkloadParams& base,
                                   PinnedDims pinned, const SweepPoint& point) {
  PaperWorkloadParams params = base;
  if (!pinned.procs) params.proc_count = point.proc_count;
  if (!pinned.granularity) params.granularity = point.granularity;
  return params;
}

/// Parses the platform options shared by every family (procs, g) into
/// `params`/`pinned`.
void parse_platform_options(const SpecOptions& o, PaperWorkloadParams& params,
                            PinnedDims& pinned) {
  pinned.procs = o.has("procs");
  pinned.granularity = o.has("g");
  params.proc_count = o.get_size("procs", params.proc_count);
  params.granularity = o.get_double("g", params.granularity);
}

void emit_platform_options(NameBuilder& name, const PaperWorkloadParams& params,
                           PinnedDims pinned) {
  if (pinned.procs) name.emit("procs", std::to_string(params.proc_count));
  if (pinned.granularity) name.emit("g", render_double(params.granularity));
}

const std::vector<SpecOptionSpec> kPlatformOptionSpecs{
    {"procs", "(sweep)", "processor count; pins the sweep dimension"},
    {"g", "(sweep)", "target granularity; pins the sweep dimension"},
};

std::vector<SpecOptionSpec> with_platform_options(
    std::vector<SpecOptionSpec> specs) {
  specs.insert(specs.end(), kPlatformOptionSpecs.begin(),
               kPlatformOptionSpecs.end());
  return specs;
}

// ----------------------------------------------------------------- families

WorkloadFamilyPtr make_paper_family_impl(const PaperWorkloadParams& base,
                                         PinnedDims pinned) {
  NameBuilder name("paper");
  name.emit_size("tmin", base.task_min, 100);
  name.emit_size("tmax", base.task_max, 150);
  name.emit_size("width", base.avg_layer_width, 0);
  name.emit_num("vmin", base.volume_min, 50.0);
  name.emit_num("vmax", base.volume_max, 150.0);
  emit_platform_options(name, base, pinned);

  std::ostringstream desc;
  desc << "paper §6 generator: layered DAG, v ~ U[" << base.task_min << ", "
       << base.task_max << "], volumes ~ U[" << base.volume_min << ", "
       << base.volume_max << "], delays ~ U[" << base.delay_min << ", "
       << base.delay_max << "]";
  return std::make_unique<ConfiguredFamily>(
      name.str(), desc.str(),
      [base, pinned](Rng& rng, const SweepPoint& point) {
        return make_paper_workload(rng, resolve_params(base, pinned, point));
      });
}

WorkloadFamilyPtr make_layered_family(const SpecOptions& o) {
  LayeredDagParams dag;
  dag.task_count = o.get_size("tasks", dag.task_count);
  dag.avg_layer_width = o.get_size("width", dag.avg_layer_width);
  dag.edge_probability = o.get_double("p", dag.edge_probability);
  dag.max_layer_jump = o.get_size("jump", dag.max_layer_jump);
  dag.volume_min = o.get_double("vmin", dag.volume_min);
  dag.volume_max = o.get_double("vmax", dag.volume_max);
  dag.connect = o.get_bool("connect", dag.connect);
  PaperWorkloadParams base;
  PinnedDims pinned;
  parse_platform_options(o, base, pinned);

  NameBuilder name("layered");
  name.emit_size("tasks", dag.task_count, 120);
  name.emit_size("width", dag.avg_layer_width, 8);
  name.emit_num("p", dag.edge_probability, 0.25);
  name.emit_size("jump", dag.max_layer_jump, 2);
  name.emit_num("vmin", dag.volume_min, 50.0);
  name.emit_num("vmax", dag.volume_max, 150.0);
  if (!dag.connect) name.emit("connect", "0");
  emit_platform_options(name, base, pinned);

  std::ostringstream desc;
  desc << "layered random DAG: " << dag.task_count << " tasks, avg width "
       << dag.avg_layer_width << ", edge probability " << dag.edge_probability
       << ", layer jump " << dag.max_layer_jump;
  return std::make_unique<ConfiguredFamily>(
      name.str(), desc.str(),
      [dag, base, pinned](Rng& rng, const SweepPoint& point) {
        TaskGraph graph = make_layered_dag(rng, dag);
        return make_workload_for_graph(rng, std::move(graph),
                                       resolve_params(base, pinned, point));
      });
}

WorkloadFamilyPtr make_gnp_family(const SpecOptions& o) {
  GnpDagParams dag;
  dag.task_count = o.get_size("tasks", dag.task_count);
  dag.edge_probability = o.get_double("p", dag.edge_probability);
  dag.volume_min = o.get_double("vmin", dag.volume_min);
  dag.volume_max = o.get_double("vmax", dag.volume_max);
  PaperWorkloadParams base;
  PinnedDims pinned;
  parse_platform_options(o, base, pinned);

  NameBuilder name("gnp");
  name.emit_size("tasks", dag.task_count, 100);
  name.emit_num("p", dag.edge_probability, 0.05);
  name.emit_num("vmin", dag.volume_min, 50.0);
  name.emit_num("vmax", dag.volume_max, 150.0);
  emit_platform_options(name, base, pinned);

  std::ostringstream desc;
  desc << "Erdős–Rényi DAG: " << dag.task_count
       << " tasks, edge probability " << dag.edge_probability;
  return std::make_unique<ConfiguredFamily>(
      name.str(), desc.str(),
      [dag, base, pinned](Rng& rng, const SweepPoint& point) {
        TaskGraph graph = make_gnp_dag(rng, dag);
        return make_workload_for_graph(rng, std::move(graph),
                                       resolve_params(base, pinned, point));
      });
}

/// Classic application graphs: one registry entry per kind, all sharing the
/// size/volume options (size is the family's natural parameter: chain
/// length, FFT points, Cholesky tiles, ...).
struct ClassicKind {
  const char* name;
  const char* summary;
  std::size_t default_size;
  TaskGraph (*build)(Rng&, std::size_t, const ClassicParams&);
};

const ClassicKind kClassicKinds[] = {
    {"chain", "chain t0 -> t1 -> ... (size = length)", 16,
     [](Rng&, std::size_t n, const ClassicParams& p) {
       return make_chain(n, p);
     }},
    {"forkjoin", "fork-join: source -> size parallel tasks -> sink", 16,
     [](Rng&, std::size_t n, const ClassicParams& p) {
       return make_fork_join(n, p);
     }},
    {"intree", "binary reduction tree (size = leaves, power of two)", 16,
     [](Rng&, std::size_t n, const ClassicParams& p) {
       return make_in_tree(n, p);
     }},
    {"outtree", "binary broadcast tree (size = leaves, power of two)", 16,
     [](Rng&, std::size_t n, const ClassicParams& p) {
       return make_out_tree(n, p);
     }},
    {"fft", "FFT butterfly (size = points, power of two)", 8,
     [](Rng&, std::size_t n, const ClassicParams& p) { return make_fft(n, p); }},
    {"gauss", "Gaussian elimination wavefront (size = matrix dimension)", 8,
     [](Rng&, std::size_t n, const ClassicParams& p) {
       return make_gaussian_elimination(n, p);
     }},
    {"wavefront", "2-D stencil wavefront (size x size grid)", 6,
     [](Rng&, std::size_t n, const ClassicParams& p) {
       return make_wavefront(n, n, p);
     }},
    {"sp", "random series-parallel DAG (size ~ task count)", 32,
     [](Rng& rng, std::size_t n, const ClassicParams& p) {
       return make_series_parallel(rng, n, p);
     }},
    {"cholesky", "tiled Cholesky factorization (size = tile dimension)", 4,
     [](Rng&, std::size_t n, const ClassicParams& p) {
       return make_cholesky(n, p);
     }},
    {"lu", "tiled LU factorization (size = tile dimension)", 4,
     [](Rng&, std::size_t n, const ClassicParams& p) { return make_lu(n, p); }},
};

WorkloadFamilyPtr make_classic_family(const ClassicKind& kind,
                                      const SpecOptions& o) {
  const std::size_t size = o.get_size("size", kind.default_size);
  ClassicParams classic;
  classic.volume = o.get_double("volume", classic.volume);
  PaperWorkloadParams base;
  PinnedDims pinned;
  parse_platform_options(o, base, pinned);

  NameBuilder name(kind.name);
  name.emit_size("size", size, kind.default_size);
  name.emit_num("volume", classic.volume, 100.0);
  emit_platform_options(name, base, pinned);

  const std::string desc =
      std::string(kind.summary) + ", size " + std::to_string(size);
  TaskGraph (*build)(Rng&, std::size_t, const ClassicParams&) = kind.build;
  return std::make_unique<ConfiguredFamily>(
      name.str(), desc,
      [build, size, classic, base, pinned](Rng& rng, const SweepPoint& point) {
        TaskGraph graph = build(rng, size, classic);
        return make_workload_for_graph(rng, std::move(graph),
                                       resolve_params(base, pinned, point));
      });
}

WorkloadFamilyPtr make_trace_family(const SpecOptions& o) {
  const std::string path = o.get("file");  // required; throws when absent
  std::ifstream in(path);
  FTSCHED_REQUIRE(in.good(), "cannot open trace graph file: " + path);
  // Loaded once at construction (fail fast on malformed files); generate()
  // stamps a fresh random platform/cost model onto a copy per instance.
  const auto graph = std::make_shared<const TaskGraph>(read_graph(in));
  PaperWorkloadParams base;
  PinnedDims pinned;
  parse_platform_options(o, base, pinned);

  NameBuilder name("trace");
  name.emit("file", path);
  emit_platform_options(name, base, pinned);

  std::ostringstream desc;
  desc << "trace-driven DAG from " << path << " (\"" << graph->name() << "\", "
       << graph->task_count() << " tasks, " << graph->edge_count()
       << " edges) with random paper-style platforms";
  return std::make_unique<ConfiguredFamily>(
      name.str(), desc.str(),
      [graph, base, pinned](Rng& rng, const SweepPoint& point) {
        return make_workload_for_graph(rng, TaskGraph(*graph),
                                       resolve_params(base, pinned, point));
      });
}

WorkloadRegistry make_global_registry() {
  WorkloadRegistry registry;
  registry.add(
      {"paper",
       "the paper's §6 workload: layered DAG, published parameter ranges",
       with_platform_options({
           {"tmin", "100", "minimum task count (v ~ U[tmin, tmax])"},
           {"tmax", "150", "maximum task count"},
           {"width", "0", "avg tasks per layer (0 = auto: v/15, min 8)"},
           {"vmin", "50", "minimum message volume"},
           {"vmax", "150", "maximum message volume"},
       }),
       [](const SpecOptions& o) {
         PaperWorkloadParams params;
         params.task_min = o.get_size("tmin", params.task_min);
         params.task_max = o.get_size("tmax", params.task_max);
         params.avg_layer_width = o.get_size("width", params.avg_layer_width);
         params.volume_min = o.get_double("vmin", params.volume_min);
         params.volume_max = o.get_double("vmax", params.volume_max);
         PinnedDims pinned;
         parse_platform_options(o, params, pinned);
         FTSCHED_REQUIRE(params.task_min > 0 &&
                             params.task_max >= params.task_min,
                         "paper workload: need 0 < tmin <= tmax");
         return make_paper_family_impl(params, pinned);
       }});
  registry.add({"layered",
                "layered random DAG (Dogan & Ozguner construction)",
                with_platform_options({
                    {"tasks", "120", "task count"},
                    {"width", "8", "average tasks per layer"},
                    {"p", "0.25", "edge probability per candidate predecessor"},
                    {"jump", "2", "how far back (in layers) an edge may reach"},
                    {"vmin", "50", "minimum message volume"},
                    {"vmax", "150", "maximum message volume"},
                    {"connect", "1", "guarantee a connected DAG: 0|1"},
                }),
                make_layered_family});
  registry.add({"gnp",
                "Erdős–Rényi DAG over a random topological order",
                with_platform_options({
                    {"tasks", "100", "task count"},
                    {"p", "0.05", "edge probability per (i, j) pair"},
                    {"vmin", "50", "minimum message volume"},
                    {"vmax", "150", "maximum message volume"},
                }),
                make_gnp_family});
  for (const ClassicKind& kind : kClassicKinds) {
    registry.add({kind.name,
                  kind.summary,
                  with_platform_options({
                      {"size", std::to_string(kind.default_size),
                       "family size parameter"},
                      {"volume", "100", "uniform message volume per edge"},
                  }),
                  [&kind](const SpecOptions& o) {
                    return make_classic_family(kind, o);
                  }});
  }
  registry.add({"trace",
                "DAG loaded from a text graph file (dag/serialize.hpp format)",
                with_platform_options({
                    {"file", "(required)", "graph file to load"},
                }),
                make_trace_family});
  return registry;
}

}  // namespace

WorkloadRegistry& WorkloadRegistry::global() {
  static WorkloadRegistry registry = make_global_registry();
  return registry;
}

WorkloadFamilyPtr make_workload_family(
    const std::string& spec,
    const std::vector<std::pair<std::string, std::string>>& defaults) {
  return WorkloadRegistry::global().create_with_defaults(spec, defaults);
}

WorkloadFamilyPtr make_paper_family(const PaperWorkloadParams& params) {
  return make_paper_family_impl(params, PinnedDims{});
}

}  // namespace ftsched
